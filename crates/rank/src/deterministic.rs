//! The two deterministic benchmark rankings (paper §3.4–3.5).
//!
//! * **InEdge** — the "cardinality" metric of Lacroix et al.: the number
//!   of incoming edges of a target node. Very fast, but ignores evidence
//!   strength, only sees the immediate neighborhood, and its integer
//!   scores produce many ties.
//! * **PathCount** — the number of distinct paths from the query node,
//!   measuring connectivity of the whole intervening subgraph. Only
//!   defined on DAGs ("cycles lead to infinite PathCounts").

use biorank_graph::{topo, QueryGraph};

use crate::{Error, Ranker, Scores};

/// §3.4: in-degree as relevance.
#[derive(Clone, Copy, Debug, Default)]
pub struct InEdge;

impl Ranker for InEdge {
    fn name(&self) -> &'static str {
        "InEdge"
    }

    fn score(&self, q: &QueryGraph) -> Result<Scores, Error> {
        let g = q.graph();
        let mut scores = Scores::zeroed(g.node_bound());
        for n in g.nodes() {
            scores.set(n, g.in_degree(n) as f64);
        }
        Ok(scores)
    }
}

/// §3.5: number of source→target paths as relevance.
#[derive(Clone, Copy, Debug, Default)]
pub struct PathCount;

impl Ranker for PathCount {
    fn name(&self) -> &'static str {
        "PathC"
    }

    fn score(&self, q: &QueryGraph) -> Result<Scores, Error> {
        let counts = topo::count_paths_from(q.graph(), q.source())?;
        Ok(Scores::from_vec(counts.iter().map(|&c| c as f64).collect()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biorank_graph::{NodeId, Prob, ProbGraph};

    fn p(v: f64) -> Prob {
        Prob::new(v).unwrap()
    }

    /// Fig. 4a: both InEdge and PathCount score u as 2.
    fn fig4a() -> (QueryGraph, NodeId) {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let m = g.add_node(p(1.0));
        let a = g.add_node(p(1.0));
        let b = g.add_node(p(1.0));
        let u = g.add_node(p(1.0));
        g.add_edge(s, m, p(0.5)).unwrap();
        g.add_edge(m, a, p(1.0)).unwrap();
        g.add_edge(m, b, p(1.0)).unwrap();
        g.add_edge(a, u, p(1.0)).unwrap();
        g.add_edge(b, u, p(1.0)).unwrap();
        (QueryGraph::new(g, s, vec![u]).unwrap(), u)
    }

    /// Fig. 4b: Wheatstone bridge; InEdge = 2, PathCount = 3.
    fn fig4b() -> (QueryGraph, NodeId) {
        let (g, s, t) = biorank_graph::reduction::wheatstone(p(0.5));
        (QueryGraph::new(g, s, vec![t]).unwrap(), t)
    }

    #[test]
    fn fig4a_scores_match_paper() {
        let (q, u) = fig4a();
        assert_eq!(InEdge.score(&q).unwrap().get(u), 2.0);
        assert_eq!(PathCount.score(&q).unwrap().get(u), 2.0);
    }

    #[test]
    fn fig4b_scores_match_paper() {
        let (q, t) = fig4b();
        assert_eq!(InEdge.score(&q).unwrap().get(t), 2.0);
        assert_eq!(PathCount.score(&q).unwrap().get(t), 3.0);
    }

    #[test]
    fn inedge_ignores_probabilities() {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let t = g.add_node(p(0.01));
        g.add_edge(s, t, p(0.0001)).unwrap();
        let q = QueryGraph::new(g, s, vec![t]).unwrap();
        assert_eq!(InEdge.score(&q).unwrap().get(t), 1.0);
    }

    #[test]
    fn pathcount_rejects_cycles() {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let a = g.add_node(p(1.0));
        let b = g.add_node(p(1.0));
        g.add_edge(s, a, p(0.5)).unwrap();
        g.add_edge(a, b, p(0.5)).unwrap();
        g.add_edge(b, a, p(0.5)).unwrap();
        let q = QueryGraph::new(g, s, vec![b]).unwrap();
        assert!(matches!(
            PathCount.score(&q),
            Err(Error::Graph(biorank_graph::Error::CycleDetected))
        ));
    }

    #[test]
    fn inedge_handles_cycles_fine() {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let a = g.add_node(p(1.0));
        g.add_edge(s, a, p(0.5)).unwrap();
        let b = g.add_node(p(1.0));
        g.add_edge(a, b, p(0.5)).unwrap();
        g.add_edge(b, a, p(0.5)).unwrap();
        let q = QueryGraph::new(g, s, vec![b]).unwrap();
        let scores = InEdge.score(&q).unwrap();
        assert_eq!(scores.get(a), 2.0);
        assert_eq!(scores.get(b), 1.0);
    }

    #[test]
    fn pathcount_source_is_one() {
        let (q, _) = fig4a();
        assert_eq!(PathCount.score(&q).unwrap().get(q.source()), 1.0);
    }
}
