//! Adaptive bound-certified Monte Carlo termination.
//!
//! Theorem 3.1 ([`bounds`]) answers "how many trials are enough to
//! rank a separation of ε at confidence 1 − δ?" — the paper plugs in
//! ε = 0.02, δ = 0.05 and runs a fixed 10⁴ trials on every query. But
//! the bound can be read *adaptively*: after `n` trials,
//! [`bounds::resolvable_epsilon`] says which separations those `n`
//! trials already resolve, and most real answer sets separate long
//! before the worst-case budget. [`AdaptiveRunner`] drives any
//! incremental [`Estimator`] batch by batch and stops issuing batches
//! as soon as the running ranking is certified:
//!
//! > every adjacent gap between sorted answer estimates is either
//! > **resolved** (at least the ε the accumulated trials resolve at
//! > confidence 1 − δ) or **excused** (below the requested ε floor —
//! > Theorem 3.1's contract never promised to order separations
//! > smaller than ε).
//!
//! Once `n` reaches `trials_needed(ε, δ)` the condition is vacuous, so
//! an adaptive run never exceeds the fixed Theorem 3.1 budget for its
//! (ε, δ) — the ceiling is `min(engine.trials(), n(ε, δ))` — while
//! easy queries stop after hundreds of trials instead of thousands.
//!
//! The gaps are *observed* estimates standing in for true scores, the
//! same reading the adaptive top-k evaluator ([`crate::TopK`]) uses
//! for its boundary gap; the certificate therefore asserts the
//! ranking of the separations the run has seen, at per-pair
//! confidence 1 − δ.
//!
//! **Top-k certification.** Ranking semantics only need scores precise
//! enough to order the answers a user actually sees. When the caller
//! asks for the top `k` ([`AdaptiveRunner::with_top_k`]) the stopping
//! rule shrinks to the gaps that decide that prefix: the `k − 1` gaps
//! *inside* the current top-k plus the **boundary gap** between rank
//! `k` and rank `k + 1`. Gaps below the boundary are ignored — tail
//! answers keep their running estimates and are returned unordered
//! beyond what the spent trials happen to resolve. The certificate's
//! [`mode`](Certificate::mode) records which contract was certified,
//! so a top-k result is never mistaken for a fully ordered one.
//!
//! **Determinism:** the incremental contract guarantees a run stopped
//! after `b` batches is bit-identical to a fixed run of `64·b` trials,
//! and a run that reaches its ceiling is bit-identical to the fixed
//! ceiling run — adaptive execution can share infrastructure (caches,
//! replay, cross-checks) with fixed execution without a bit of drift.
//! Top-k runs ride the same contract: only the stopping batch moves,
//! never the sample schedule.

use biorank_graph::QueryGraph;

use crate::estimator::Estimator;
use crate::{bounds, Error, Scores};

/// Which ranking contract a [`Certificate`] asserts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CertificateMode {
    /// Every adjacent gap of the full answer ranking was checked.
    Full,
    /// Only the top-k prefix was checked: the gaps inside the prefix
    /// plus the boundary gap to rank k + 1. Answers below the boundary
    /// carry running estimates with no ordering claim.
    TopK(u32),
}

impl CertificateMode {
    /// The `k` up to which this certificate orders the ranking:
    /// `None` means the whole answer set (full certification).
    pub fn certified_k(&self) -> Option<u32> {
        match self {
            CertificateMode::Full => None,
            CertificateMode::TopK(k) => Some(*k),
        }
    }
}

/// The stop certificate of an adaptive run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Certificate {
    /// Monte Carlo trials actually executed.
    pub trials_used: u32,
    /// The separation those trials resolve at confidence 1 − δ
    /// ([`bounds::resolvable_epsilon`] of `trials_used`).
    pub epsilon: f64,
    /// `true` when the stopping rule certified the ranking; `false`
    /// when the engine's trial ceiling hit with some gap still in the
    /// unresolved band.
    pub certified: bool,
    /// Which ranking contract the run checked: the full answer list,
    /// or a top-k prefix plus its boundary.
    pub mode: CertificateMode,
}

/// Scores plus the certificate that stopped the run.
#[derive(Clone, Debug)]
pub struct AdaptiveOutcome {
    /// Final estimates, normalized by [`Certificate::trials_used`].
    pub scores: Scores,
    /// How and why the run stopped.
    pub certificate: Certificate,
    /// Wall-clock nanoseconds spent inside estimator batches
    /// (`begin` + every `step`). Timing observes the run; it never
    /// feeds back into the sample schedule, so the bit-identity
    /// contract is untouched.
    pub step_nanos: u64,
    /// Wall-clock nanoseconds spent in certification polls (the
    /// sorted-gap checks between batches).
    pub poll_nanos: u64,
}

/// Drives an incremental [`Estimator`] with bound-certified early
/// termination.
///
/// The engine's own `trials` is the hard ceiling; `epsilon` is the
/// smallest separation the caller needs ranked correctly and `delta`
/// the allowed per-pair failure probability (both in `(0, 1)`).
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveRunner<E> {
    engine: E,
    epsilon: f64,
    delta: f64,
    top_k: Option<usize>,
    deadline: Option<std::time::Instant>,
}

impl<E: Estimator> AdaptiveRunner<E> {
    /// Wraps `engine` with an (ε, δ) stopping rule over the full
    /// answer ranking.
    pub fn new(engine: E, epsilon: f64, delta: f64) -> Self {
        AdaptiveRunner {
            engine,
            epsilon,
            delta,
            top_k: None,
            deadline: None,
        }
    }

    /// Restricts the stopping rule to the top-`k` prefix: only the
    /// gaps inside the current top `k` and the boundary gap between
    /// rank `k` and rank `k + 1` must resolve (or be excused by the ε
    /// floor). Since those are a subset of the full rule's gaps, a
    /// top-k run never stops later than the full run of the same
    /// `(engine, ε, δ)` — and usually stops much earlier on wide
    /// answer sets whose tail is closely bunched.
    ///
    /// A `k` whose checked gaps are exactly the full rule's — any
    /// `k ≥ answers − 1`, since the boundary gap of rank `answers − 1`
    /// already orders the last answer — is exactly full certification
    /// and is certified (and stamped) as such.
    pub fn with_top_k(mut self, k: usize) -> Self {
        self.top_k = Some(k);
        self
    }

    /// Aborts the run with [`Error::DeadlineExceeded`] once `deadline`
    /// passes. The check sits *between* estimator batches, next to the
    /// certification poll: a run that completes (certifies or hits its
    /// ceiling) before the deadline executes the exact same sample
    /// schedule as an undeadlined run, so bit-identity is preserved —
    /// the deadline can only cut a run short, never reshape it. The
    /// error carries the trials completed so callers can report
    /// partial-trial telemetry.
    pub fn with_deadline(mut self, deadline: std::time::Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Runs batches until the ranking certifies or the ceiling hits.
    pub fn run(&self, q: &QueryGraph) -> Result<AdaptiveOutcome, Error> {
        validate_params(self.epsilon, self.delta)?;
        let answers = q.answers();
        let (checked_gaps, mode) = checked_gaps_and_mode(answers.len(), self.top_k);
        let step_start = std::time::Instant::now();
        let mut state = self.engine.begin(q)?;
        let mut step_nanos = step_start.elapsed().as_nanos() as u64;
        let mut poll_nanos = 0u64;
        // The estimate buffer is reused across every 64-trial batch:
        // the certification poll is allocation-free after the first
        // step (the engine-side trial scratch — mask words, visit
        // stamps — already lives for the whole run inside the state).
        let mut est: Vec<f64> = Vec::with_capacity(answers.len());
        let mut trials_used = 0;
        let mut certified = false;
        for b in 0..self.engine.num_batches() {
            let step_start = std::time::Instant::now();
            let stats = self.engine.step(&mut state, b);
            step_nanos += step_start.elapsed().as_nanos() as u64;
            trials_used = stats.total_trials;
            let poll_start = std::time::Instant::now();
            let done = self.certifies(&state, answers, checked_gaps, &mut est, trials_used);
            poll_nanos += poll_start.elapsed().as_nanos() as u64;
            if done {
                certified = true;
                break;
            }
            // Deadline poll AFTER the certification check: a batch that
            // certifies on time is never discarded by a deadline that
            // fired during its poll.
            if let Some(deadline) = self.deadline {
                if std::time::Instant::now() > deadline {
                    return Err(Error::DeadlineExceeded { trials_used });
                }
            }
        }
        Ok(AdaptiveOutcome {
            scores: self.engine.finish(state),
            certificate: Certificate {
                trials_used,
                epsilon: bounds::resolvable_epsilon(u64::from(trials_used), self.delta)?,
                certified,
                mode,
            },
            step_nanos,
            poll_nanos,
        })
    }

    /// The stopping rule: each of the leading `checked_gaps` gaps
    /// between sorted answer estimates is resolved by `trials` trials
    /// or excused by the ε floor. "Gap `g` is resolved by `n` trials"
    /// is checked directly as `n ≥ trials_needed(g, δ)`
    /// ([`bounds::resolves`]) — equivalent to
    /// `g ≥ resolvable_epsilon(n, δ)` by monotonicity, but one cheap
    /// closed-form evaluation per gap instead of a 200-step bisection
    /// per batch (the bisection runs once, at the end, to stamp the
    /// certificate).
    fn certifies(
        &self,
        state: &E::State<'_>,
        answers: &[biorank_graph::NodeId],
        checked_gaps: usize,
        est: &mut Vec<f64>,
        trials: u32,
    ) -> bool {
        if checked_gaps == 0 {
            return true;
        }
        // Per-answer estimates only — polling the full node-bound
        // snapshot every 64 trials would dominate the check.
        self.engine.estimates_into(state, answers, est);
        sorted_gaps_certified(est, checked_gaps, self.epsilon, self.delta, trials)
    }
}

/// Rejects an (ε, δ) pair outside `(0, 1)`.
///
/// Shared by [`AdaptiveRunner::run`] and the fused multi-query runner
/// ([`crate::fused`]), which admits each job's parameters
/// independently.
pub(crate) fn validate_params(epsilon: f64, delta: f64) -> Result<(), Error> {
    for (name, value) in [("epsilon", epsilon), ("delta", delta)] {
        if !(value > 0.0 && value < 1.0) {
            return Err(Error::InvalidParameter { name, value });
        }
    }
    Ok(())
}

/// How many leading sorted-estimate gaps the stopping rule must
/// resolve, and the certificate mode that contract is stamped with:
/// all `answers − 1` gaps for full certification; the `k − 1` prefix
/// gaps plus the boundary gap (= `k`) for top-k. Checking every gap IS
/// full certification, whatever `k` the caller spelled it with —
/// stamping it `Full` lets the result satisfy full-coverage consumers
/// (e.g. cache reuse) without a bit-identical re-run.
pub(crate) fn checked_gaps_and_mode(
    answers: usize,
    top_k: Option<usize>,
) -> (usize, CertificateMode) {
    let full_gaps = answers.saturating_sub(1);
    let checked_gaps = match top_k {
        Some(k) => k.min(full_gaps),
        None => full_gaps,
    };
    let mode = match top_k {
        Some(k) if checked_gaps < full_gaps => CertificateMode::TopK(k as u32),
        _ => CertificateMode::Full,
    };
    (checked_gaps, mode)
}

/// The certification predicate over one poll's answer estimates:
/// sorts `est` descending in place, then requires each of the leading
/// `checked_gaps` adjacent gaps to be resolved by `trials` trials or
/// excused by the ε floor. "Gap `g` is resolved by `n` trials" is
/// checked directly as `n ≥ trials_needed(g, δ)` ([`bounds::resolves`])
/// — equivalent to `g ≥ resolvable_epsilon(n, δ)` by monotonicity, but
/// one cheap closed-form evaluation per gap instead of a 200-step
/// bisection per batch (the bisection runs once, at the end, to stamp
/// the certificate).
pub(crate) fn sorted_gaps_certified(
    est: &mut [f64],
    checked_gaps: usize,
    epsilon: f64,
    delta: f64,
    trials: u32,
) -> bool {
    est.sort_unstable_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    est.windows(2).take(checked_gaps).all(|w| {
        let gap = w[0] - w[1];
        gap < epsilon || bounds::resolves(gap, delta, u64::from(trials))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ranker, TraversalMc, WordMc};
    use biorank_graph::{NodeId, Prob, ProbGraph};

    fn p(v: f64) -> Prob {
        Prob::new(v).unwrap()
    }

    /// Star with well-separated chain strengths.
    fn separated_star() -> QueryGraph {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let mut answers = Vec::new();
        for (i, q_val) in [0.9, 0.6, 0.3].iter().enumerate() {
            let t = g.add_labeled_node(p(1.0), format!("t{i}"));
            g.add_edge(s, t, p(*q_val)).unwrap();
            answers.push(t);
        }
        QueryGraph::new(g, s, answers).unwrap()
    }

    /// Star with one wide leading gap and a near-tied tail: full
    /// certification must grind on the 0.01 tail gap while top-1 only
    /// needs the 0.6 boundary gap.
    fn wide_then_tied_star() -> QueryGraph {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let mut answers = Vec::new();
        for (i, q_val) in [0.9, 0.3, 0.29].iter().enumerate() {
            let t = g.add_labeled_node(p(1.0), format!("t{i}"));
            g.add_edge(s, t, p(*q_val)).unwrap();
            answers.push(t);
        }
        QueryGraph::new(g, s, answers).unwrap()
    }

    /// Two exactly tied answers: never certifiable above the ε floor.
    fn tied_pair(eps_floor_beating_gap: bool) -> QueryGraph {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let a = g.add_node(p(1.0));
        let b = g.add_node(p(1.0));
        let qa = if eps_floor_beating_gap { 0.55 } else { 0.5 };
        g.add_edge(s, a, p(qa)).unwrap();
        g.add_edge(s, b, p(0.5)).unwrap();
        QueryGraph::new(g, s, vec![a, b]).unwrap()
    }

    #[test]
    fn separated_answers_certify_early() {
        let q = separated_star();
        for out in [
            AdaptiveRunner::new(WordMc::new(10_000, 7), 0.02, 0.05)
                .run(&q)
                .unwrap(),
            AdaptiveRunner::new(TraversalMc::new(10_000, 7), 0.02, 0.05)
                .run(&q)
                .unwrap(),
        ] {
            assert!(out.certificate.certified);
            assert!(
                out.certificate.trials_used < 2_000,
                "gaps of 0.3 should certify in hundreds of trials, used {}",
                out.certificate.trials_used
            );
            // The echoed ε is exactly what the spent trials resolve.
            assert_eq!(
                out.certificate.epsilon,
                bounds::resolvable_epsilon(u64::from(out.certificate.trials_used), 0.05).unwrap()
            );
        }
    }

    #[test]
    fn adaptive_never_exceeds_the_theorem_bound() {
        // Once n(ε, δ) trials accumulate the rule is vacuous, so even
        // a hard tie stops at (or before — its observed gap drops
        // below the ε floor and is excused) the fixed budget the paper
        // would have spent.
        let q = tied_pair(false);
        let out = AdaptiveRunner::new(WordMc::new(10_000, 3), 0.02, 0.05)
            .run(&q)
            .unwrap();
        assert!(out.certificate.certified);
        let bound = bounds::trials_needed(0.02, 0.05).unwrap();
        let used = u64::from(out.certificate.trials_used);
        assert!(used <= bound + 64, "{used} > {bound}+64");
    }

    #[test]
    fn unresolved_gap_runs_to_the_ceiling_uncertified() {
        // A 0.05 gap with ε = 0.001: the gap is neither excused (≥ ε)
        // nor resolvable by a 256-trial ceiling, so the run must
        // exhaust the ceiling and say so.
        let q = tied_pair(true);
        let out = AdaptiveRunner::new(WordMc::new(256, 5), 0.001, 0.001)
            .run(&q)
            .unwrap();
        assert!(!out.certificate.certified);
        assert_eq!(out.certificate.trials_used, 256);
    }

    #[test]
    fn stopped_run_is_bit_identical_to_fixed_run_of_trials_used() {
        // The incremental contract, observed from the outside: an
        // adaptive run equals the fixed run of exactly the trials it
        // spent — certified early or not.
        let q = separated_star();
        for seed in [1u64, 2, 3] {
            let out = AdaptiveRunner::new(WordMc::new(10_000, seed), 0.02, 0.05)
                .run(&q)
                .unwrap();
            let fixed = WordMc::new(out.certificate.trials_used, seed)
                .score(&q)
                .unwrap();
            assert_eq!(out.scores.as_slice(), fixed.as_slice(), "seed {seed}");

            let out = AdaptiveRunner::new(TraversalMc::new(640, seed), 0.001, 0.001)
                .run(&q)
                .unwrap();
            let fixed = TraversalMc::new(out.certificate.trials_used, seed)
                .score(&q)
                .unwrap();
            assert_eq!(out.scores.as_slice(), fixed.as_slice(), "seed {seed}");
        }
    }

    #[test]
    fn single_answer_certifies_on_first_batch() {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let t = g.add_node(p(1.0));
        g.add_edge(s, t, p(0.5)).unwrap();
        let q = QueryGraph::new(g, s, vec![t]).unwrap();
        let out = AdaptiveRunner::new(WordMc::new(10_000, 1), 0.02, 0.05)
            .run(&q)
            .unwrap();
        assert!(out.certificate.certified);
        assert_eq!(out.certificate.trials_used, 64);
        let _ = NodeId::from_index(0);
    }

    #[test]
    fn top_k_stops_earlier_than_full_on_bunched_tails() {
        // ε floor at 0.001 so the 0.01 tail gap is not excusable: the
        // full rule needs tens of thousands of trials (or the ceiling)
        // for it, while top-1 certifies off the 0.6 boundary gap in the
        // first batches.
        let q = wide_then_tied_star();
        for (full, top1) in [
            (
                AdaptiveRunner::new(WordMc::new(20_000, 7), 0.001, 0.05)
                    .run(&q)
                    .unwrap(),
                AdaptiveRunner::new(WordMc::new(20_000, 7), 0.001, 0.05)
                    .with_top_k(1)
                    .run(&q)
                    .unwrap(),
            ),
            (
                AdaptiveRunner::new(TraversalMc::new(20_000, 7), 0.001, 0.05)
                    .run(&q)
                    .unwrap(),
                AdaptiveRunner::new(TraversalMc::new(20_000, 7), 0.001, 0.05)
                    .with_top_k(1)
                    .run(&q)
                    .unwrap(),
            ),
        ] {
            assert_eq!(top1.certificate.mode, CertificateMode::TopK(1));
            assert_eq!(top1.certificate.mode.certified_k(), Some(1));
            assert_eq!(full.certificate.mode, CertificateMode::Full);
            assert_eq!(full.certificate.mode.certified_k(), None);
            assert!(top1.certificate.certified);
            assert!(
                top1.certificate.trials_used < full.certificate.trials_used,
                "top-1 {} vs full {}",
                top1.certificate.trials_used,
                full.certificate.trials_used
            );
        }
    }

    #[test]
    fn top_k_run_is_bit_identical_to_fixed_run_of_trials_used() {
        // The same contract the full runner honors: only the stopping
        // batch moves, never the sample schedule.
        let q = wide_then_tied_star();
        for seed in [1u64, 2, 3] {
            let out = AdaptiveRunner::new(WordMc::new(20_000, seed), 0.001, 0.05)
                .with_top_k(1)
                .run(&q)
                .unwrap();
            assert!(out.certificate.certified, "seed {seed}");
            let fixed = WordMc::new(out.certificate.trials_used, seed)
                .score(&q)
                .unwrap();
            assert_eq!(out.scores.as_slice(), fixed.as_slice(), "seed {seed}");
        }
    }

    #[test]
    fn top_k_covering_all_answers_is_full_certification() {
        let q = separated_star();
        let full = AdaptiveRunner::new(WordMc::new(10_000, 7), 0.02, 0.05)
            .run(&q)
            .unwrap();
        // k = 2 on 3 answers already checks both gaps — the k-th
        // boundary orders the last answer — so it is full
        // certification too, not just k ≥ answer count.
        for k in [2usize, 3, 10] {
            let topk = AdaptiveRunner::new(WordMc::new(10_000, 7), 0.02, 0.05)
                .with_top_k(k)
                .run(&q)
                .unwrap();
            assert_eq!(topk.certificate.mode, CertificateMode::Full, "k = {k}");
            assert_eq!(topk.certificate, full.certificate, "k = {k}");
            assert_eq!(topk.scores.as_slice(), full.scores.as_slice(), "k = {k}");
        }
    }

    #[test]
    fn top_zero_certifies_on_first_batch() {
        // k = 0 asks for no ordered prefix at all: nothing to check.
        let q = tied_pair(false);
        let out = AdaptiveRunner::new(WordMc::new(10_000, 1), 0.02, 0.05)
            .with_top_k(0)
            .run(&q)
            .unwrap();
        assert!(out.certificate.certified);
        assert_eq!(out.certificate.trials_used, 64);
        assert_eq!(out.certificate.mode, CertificateMode::TopK(0));
    }

    #[test]
    fn expired_deadline_aborts_with_partial_trials() {
        // A deadline already in the past: the run must abort after its
        // first batch (the poll sits between batches, so one batch
        // always completes) and report the trials it spent.
        let q = tied_pair(true);
        let deadline = std::time::Instant::now() - std::time::Duration::from_millis(1);
        let err = AdaptiveRunner::new(WordMc::new(1_000_000, 5), 0.0001, 0.0001)
            .with_deadline(deadline)
            .run(&q)
            .unwrap_err();
        match err {
            Error::DeadlineExceeded { trials_used } => {
                assert_eq!(trials_used, 64, "aborts after exactly one batch");
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert!(err.to_string().contains("deadline_exceeded"));
    }

    #[test]
    fn generous_deadline_is_bit_identical_to_undeadlined_run() {
        // A deadline far in the future must not perturb the outcome:
        // same scores, same certificate, batch for batch.
        let q = separated_star();
        let plain = AdaptiveRunner::new(WordMc::new(10_000, 7), 0.02, 0.05)
            .run(&q)
            .unwrap();
        let deadlined = AdaptiveRunner::new(WordMc::new(10_000, 7), 0.02, 0.05)
            .with_deadline(std::time::Instant::now() + std::time::Duration::from_secs(3600))
            .run(&q)
            .unwrap();
        assert_eq!(plain.scores.as_slice(), deadlined.scores.as_slice());
        assert_eq!(plain.certificate, deadlined.certificate);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let q = separated_star();
        for (eps, delta) in [(0.0, 0.05), (1.0, 0.05), (0.02, 0.0), (0.02, 1.0)] {
            assert!(matches!(
                AdaptiveRunner::new(WordMc::new(100, 1), eps, delta).run(&q),
                Err(Error::InvalidParameter { .. })
            ));
        }
        assert!(matches!(
            AdaptiveRunner::new(WordMc::new(0, 1), 0.02, 0.05).run(&q),
            Err(Error::ZeroTrials)
        ));
    }
}
