//! Adaptive bound-certified Monte Carlo termination.
//!
//! Theorem 3.1 ([`bounds`]) answers "how many trials are enough to
//! rank a separation of ε at confidence 1 − δ?" — the paper plugs in
//! ε = 0.02, δ = 0.05 and runs a fixed 10⁴ trials on every query. But
//! the bound can be read *adaptively*: after `n` trials,
//! [`bounds::resolvable_epsilon`] says which separations those `n`
//! trials already resolve, and most real answer sets separate long
//! before the worst-case budget. [`AdaptiveRunner`] drives any
//! incremental [`Estimator`] batch by batch and stops issuing batches
//! as soon as the running ranking is certified:
//!
//! > every adjacent gap between sorted answer estimates is either
//! > **resolved** (at least the ε the accumulated trials resolve at
//! > confidence 1 − δ) or **excused** (below the requested ε floor —
//! > Theorem 3.1's contract never promised to order separations
//! > smaller than ε).
//!
//! Once `n` reaches `trials_needed(ε, δ)` the condition is vacuous, so
//! an adaptive run never exceeds the fixed Theorem 3.1 budget for its
//! (ε, δ) — the ceiling is `min(engine.trials(), n(ε, δ))` — while
//! easy queries stop after hundreds of trials instead of thousands.
//!
//! The gaps are *observed* estimates standing in for true scores, the
//! same reading the adaptive top-k evaluator ([`crate::TopK`]) uses
//! for its boundary gap; the certificate therefore asserts the
//! ranking of the separations the run has seen, at per-pair
//! confidence 1 − δ.
//!
//! **Determinism:** the incremental contract guarantees a run stopped
//! after `b` batches is bit-identical to a fixed run of `64·b` trials,
//! and a run that reaches its ceiling is bit-identical to the fixed
//! ceiling run — adaptive execution can share infrastructure (caches,
//! replay, cross-checks) with fixed execution without a bit of drift.

use biorank_graph::QueryGraph;

use crate::estimator::Estimator;
use crate::{bounds, Error, Scores};

/// The stop certificate of an adaptive run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Certificate {
    /// Monte Carlo trials actually executed.
    pub trials_used: u32,
    /// The separation those trials resolve at confidence 1 − δ
    /// ([`bounds::resolvable_epsilon`] of `trials_used`).
    pub epsilon: f64,
    /// `true` when the stopping rule certified the ranking; `false`
    /// when the engine's trial ceiling hit with some gap still in the
    /// unresolved band.
    pub certified: bool,
}

/// Scores plus the certificate that stopped the run.
#[derive(Clone, Debug)]
pub struct AdaptiveOutcome {
    /// Final estimates, normalized by [`Certificate::trials_used`].
    pub scores: Scores,
    /// How and why the run stopped.
    pub certificate: Certificate,
}

/// Drives an incremental [`Estimator`] with bound-certified early
/// termination.
///
/// The engine's own `trials` is the hard ceiling; `epsilon` is the
/// smallest separation the caller needs ranked correctly and `delta`
/// the allowed per-pair failure probability (both in `(0, 1)`).
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveRunner<E> {
    engine: E,
    epsilon: f64,
    delta: f64,
}

impl<E: Estimator> AdaptiveRunner<E> {
    /// Wraps `engine` with an (ε, δ) stopping rule.
    pub fn new(engine: E, epsilon: f64, delta: f64) -> Self {
        AdaptiveRunner {
            engine,
            epsilon,
            delta,
        }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Runs batches until the ranking certifies or the ceiling hits.
    pub fn run(&self, q: &QueryGraph) -> Result<AdaptiveOutcome, Error> {
        for (name, value) in [("epsilon", self.epsilon), ("delta", self.delta)] {
            if !(value > 0.0 && value < 1.0) {
                return Err(Error::InvalidParameter { name, value });
            }
        }
        let mut state = self.engine.begin(q)?;
        let mut trials_used = 0;
        let mut certified = false;
        for b in 0..self.engine.num_batches() {
            let stats = self.engine.step(&mut state, b);
            trials_used = stats.total_trials;
            if self.certifies(&state, q, trials_used) {
                certified = true;
                break;
            }
        }
        Ok(AdaptiveOutcome {
            scores: self.engine.finish(state),
            certificate: Certificate {
                trials_used,
                epsilon: bounds::resolvable_epsilon(u64::from(trials_used), self.delta)?,
                certified,
            },
        })
    }

    /// The stopping rule: every adjacent gap between sorted answer
    /// estimates is resolved by `trials` trials or excused by the ε
    /// floor. "Gap `g` is resolved by `n` trials" is checked directly
    /// as `n ≥ trials_needed(g, δ)` — equivalent to
    /// `g ≥ resolvable_epsilon(n, δ)` by monotonicity, but one cheap
    /// closed-form evaluation per gap instead of a 200-step bisection
    /// per batch (the bisection runs once, at the end, to stamp the
    /// certificate).
    fn certifies(&self, state: &E::State<'_>, q: &QueryGraph, trials: u32) -> bool {
        let answers = q.answers();
        if answers.len() < 2 {
            return true;
        }
        // Per-answer estimates only — polling the full node-bound
        // snapshot every 64 trials would dominate the check.
        let mut est: Vec<f64> = answers
            .iter()
            .map(|&a| self.engine.estimate(state, a))
            .collect();
        est.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        est.windows(2).all(|w| {
            let gap = w[0] - w[1];
            gap < self.epsilon
                || bounds::trials_needed(gap.min(1.0 - 1e-9), self.delta)
                    .map(|needed| u64::from(trials) >= needed)
                    .unwrap_or(false)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ranker, TraversalMc, WordMc};
    use biorank_graph::{NodeId, Prob, ProbGraph};

    fn p(v: f64) -> Prob {
        Prob::new(v).unwrap()
    }

    /// Star with well-separated chain strengths.
    fn separated_star() -> QueryGraph {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let mut answers = Vec::new();
        for (i, q_val) in [0.9, 0.6, 0.3].iter().enumerate() {
            let t = g.add_labeled_node(p(1.0), format!("t{i}"));
            g.add_edge(s, t, p(*q_val)).unwrap();
            answers.push(t);
        }
        QueryGraph::new(g, s, answers).unwrap()
    }

    /// Two exactly tied answers: never certifiable above the ε floor.
    fn tied_pair(eps_floor_beating_gap: bool) -> QueryGraph {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let a = g.add_node(p(1.0));
        let b = g.add_node(p(1.0));
        let qa = if eps_floor_beating_gap { 0.55 } else { 0.5 };
        g.add_edge(s, a, p(qa)).unwrap();
        g.add_edge(s, b, p(0.5)).unwrap();
        QueryGraph::new(g, s, vec![a, b]).unwrap()
    }

    #[test]
    fn separated_answers_certify_early() {
        let q = separated_star();
        for out in [
            AdaptiveRunner::new(WordMc::new(10_000, 7), 0.02, 0.05)
                .run(&q)
                .unwrap(),
            AdaptiveRunner::new(TraversalMc::new(10_000, 7), 0.02, 0.05)
                .run(&q)
                .unwrap(),
        ] {
            assert!(out.certificate.certified);
            assert!(
                out.certificate.trials_used < 2_000,
                "gaps of 0.3 should certify in hundreds of trials, used {}",
                out.certificate.trials_used
            );
            // The echoed ε is exactly what the spent trials resolve.
            assert_eq!(
                out.certificate.epsilon,
                bounds::resolvable_epsilon(u64::from(out.certificate.trials_used), 0.05).unwrap()
            );
        }
    }

    #[test]
    fn adaptive_never_exceeds_the_theorem_bound() {
        // Once n(ε, δ) trials accumulate the rule is vacuous, so even
        // a hard tie stops at (or before — its observed gap drops
        // below the ε floor and is excused) the fixed budget the paper
        // would have spent.
        let q = tied_pair(false);
        let out = AdaptiveRunner::new(WordMc::new(10_000, 3), 0.02, 0.05)
            .run(&q)
            .unwrap();
        assert!(out.certificate.certified);
        let bound = bounds::trials_needed(0.02, 0.05).unwrap();
        let used = u64::from(out.certificate.trials_used);
        assert!(used <= bound + 64, "{used} > {bound}+64");
    }

    #[test]
    fn unresolved_gap_runs_to_the_ceiling_uncertified() {
        // A 0.05 gap with ε = 0.001: the gap is neither excused (≥ ε)
        // nor resolvable by a 256-trial ceiling, so the run must
        // exhaust the ceiling and say so.
        let q = tied_pair(true);
        let out = AdaptiveRunner::new(WordMc::new(256, 5), 0.001, 0.001)
            .run(&q)
            .unwrap();
        assert!(!out.certificate.certified);
        assert_eq!(out.certificate.trials_used, 256);
    }

    #[test]
    fn stopped_run_is_bit_identical_to_fixed_run_of_trials_used() {
        // The incremental contract, observed from the outside: an
        // adaptive run equals the fixed run of exactly the trials it
        // spent — certified early or not.
        let q = separated_star();
        for seed in [1u64, 2, 3] {
            let out = AdaptiveRunner::new(WordMc::new(10_000, seed), 0.02, 0.05)
                .run(&q)
                .unwrap();
            let fixed = WordMc::new(out.certificate.trials_used, seed)
                .score(&q)
                .unwrap();
            assert_eq!(out.scores.as_slice(), fixed.as_slice(), "seed {seed}");

            let out = AdaptiveRunner::new(TraversalMc::new(640, seed), 0.001, 0.001)
                .run(&q)
                .unwrap();
            let fixed = TraversalMc::new(out.certificate.trials_used, seed)
                .score(&q)
                .unwrap();
            assert_eq!(out.scores.as_slice(), fixed.as_slice(), "seed {seed}");
        }
    }

    #[test]
    fn single_answer_certifies_on_first_batch() {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let t = g.add_node(p(1.0));
        g.add_edge(s, t, p(0.5)).unwrap();
        let q = QueryGraph::new(g, s, vec![t]).unwrap();
        let out = AdaptiveRunner::new(WordMc::new(10_000, 1), 0.02, 0.05)
            .run(&q)
            .unwrap();
        assert!(out.certificate.certified);
        assert_eq!(out.certificate.trials_used, 64);
        let _ = NodeId::from_index(0);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let q = separated_star();
        for (eps, delta) in [(0.0, 0.05), (1.0, 0.05), (0.02, 0.0), (0.02, 1.0)] {
            assert!(matches!(
                AdaptiveRunner::new(WordMc::new(100, 1), eps, delta).run(&q),
                Err(Error::InvalidParameter { .. })
            ));
        }
        assert!(matches!(
            AdaptiveRunner::new(WordMc::new(0, 1), 0.02, 0.05).run(&q),
            Err(Error::ZeroTrials)
        ));
    }
}
