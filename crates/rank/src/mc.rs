//! Monte Carlo estimation of reliability scores (paper §3.1(1)).
//!
//! Two engines share the sampling semantics — include node `i` with
//! probability `p(i)`, edge `e` with probability `q(e)`, count the
//! trials in which a node is reached from the source while present:
//!
//! * [`NaiveMc`] — "randomly choose a subgraph … check if there exists a
//!   path": samples *every* node and edge each trial, then searches.
//! * [`TraversalMc`] — Algorithm 3.1: a depth-first traversal that only
//!   samples elements it actually reaches. "In this manner we don't
//!   simulate any nodes or edges only to later discover that they are
//!   disconnected." The paper measures an average 3.4× speed-up on its
//!   query graphs; `biorank-bench` reproduces the comparison.
//!
//! Both estimate `r(t)` for **all** nodes simultaneously — one run ranks
//! the entire answer set.
//!
//! Both engines implement the incremental [`Estimator`] contract: their
//! `score` entry points drive the same 64-trial batches the
//! [`AdaptiveRunner`](crate::AdaptiveRunner) issues, over one
//! persistent RNG stream, so a run stopped after `b` batches is
//! bit-identical to a fixed run of `64·b` trials.

use std::borrow::Cow;

use biorank_graph::{NodeId, QueryGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::estimator::{merge_unit_counts, BatchStats, Estimator, BATCH_TRIALS};
use crate::{Error, Ranker, Scores};

/// The per-trial visit stamp type. Trials are numbered from 1 so that a
/// zeroed stamp array means "never visited".
type Stamp = u32;

/// Naive Monte Carlo: sample the whole world, then test connectivity.
#[derive(Clone, Copy, Debug)]
pub struct NaiveMc {
    /// Number of independent trials (`n` in the paper).
    pub trials: u32,
    /// RNG seed; equal seeds give equal estimates.
    pub seed: u64,
}

impl NaiveMc {
    /// Creates a naive sampler with the given trial count and seed.
    pub fn new(trials: u32, seed: u64) -> Self {
        NaiveMc { trials, seed }
    }
}

/// In-progress state of an incremental [`NaiveMc`] run.
pub struct NaiveState<'q> {
    q: &'q QueryGraph,
    rng: StdRng,
    node_on: Vec<bool>,
    edge_on: Vec<bool>,
    reached: Vec<u64>,
    last_sim: Vec<Stamp>,
    stack: Vec<NodeId>,
    trials_done: u32,
    trials_total: u32,
}

impl NaiveState<'_> {
    /// Runs trials `trials_done+1 ..= trials_done+n`, continuing the
    /// persistent RNG stream and stamp numbering — the slicing into
    /// batches is invisible in the counts.
    fn advance(&mut self, n: u32) {
        let g = self.q.graph();
        let source = self.q.source();
        for t in self.trials_done + 1..=self.trials_done + n {
            // Sample the entire world up front — this is the cost the
            // traversal variant avoids.
            for node in g.nodes() {
                self.node_on[node.index()] = self.rng.gen::<f64>() < g.node_p(node).get();
            }
            for e in g.edges() {
                self.edge_on[e.index()] = self.rng.gen::<f64>() < g.edge_q(e).get();
            }
            if !self.node_on[source.index()] {
                continue;
            }
            self.stack.clear();
            self.stack.push(source);
            self.last_sim[source.index()] = t;
            self.reached[source.index()] += 1;
            while let Some(x) = self.stack.pop() {
                for e in g.out_edges(x) {
                    if !self.edge_on[e.index()] {
                        continue;
                    }
                    let y = g.edge_dst(e);
                    if self.last_sim[y.index()] == t || !self.node_on[y.index()] {
                        continue;
                    }
                    self.last_sim[y.index()] = t;
                    self.reached[y.index()] += 1;
                    self.stack.push(y);
                }
            }
        }
        self.trials_done += n;
    }
}

impl Estimator for NaiveMc {
    type State<'q> = NaiveState<'q>;

    fn trials(&self) -> u32 {
        self.trials
    }

    fn begin<'q>(&self, q: &'q QueryGraph) -> Result<NaiveState<'q>, Error> {
        if self.trials == 0 {
            return Err(Error::ZeroTrials);
        }
        let nb = q.graph().node_bound();
        let eb = q.graph().edge_bound();
        Ok(NaiveState {
            q,
            rng: StdRng::seed_from_u64(self.seed),
            node_on: vec![false; nb],
            edge_on: vec![false; eb],
            reached: vec![0; nb],
            // Visit stamps instead of a `seen: Vec<bool>` cleared every
            // trial: a slot is "seen" when its stamp equals the current
            // trial number, so no O(n) refill between trials. The
            // sampled world buffers need no clearing either — every
            // slot is overwritten by the full resample.
            last_sim: vec![0; nb],
            stack: Vec::with_capacity(nb),
            trials_done: 0,
            trials_total: self.trials,
        })
    }

    fn step(&self, state: &mut NaiveState<'_>, batch: u32) -> BatchStats {
        debug_assert_eq!(batch * BATCH_TRIALS, state.trials_done, "batches in order");
        let n = BATCH_TRIALS.min(state.trials_total - state.trials_done);
        state.advance(n);
        BatchStats {
            batch,
            trials: n,
            total_trials: state.trials_done,
        }
    }

    fn snapshot(&self, state: &NaiveState<'_>) -> Scores {
        normalize(&state.reached, state.trials_done)
    }

    fn estimate(&self, state: &NaiveState<'_>, node: NodeId) -> f64 {
        estimate_count(&state.reached, node, state.trials_done)
    }

    fn finish(&self, state: NaiveState<'_>) -> Scores {
        self.snapshot(&state)
    }
}

impl Ranker for NaiveMc {
    fn name(&self) -> &'static str {
        "Rel(naiveMC)"
    }

    fn score(&self, q: &QueryGraph) -> Result<Scores, Error> {
        self.drive(q)
    }
}

/// Algorithm 3.1: Reliability Traversal Monte Carlo Simulation.
#[derive(Clone, Copy, Debug)]
pub struct TraversalMc {
    /// Number of independent trials (`n` in the paper).
    pub trials: u32,
    /// RNG seed; equal seeds give equal estimates.
    pub seed: u64,
}

impl TraversalMc {
    /// Creates a traversal sampler with the given trial count and seed.
    pub fn new(trials: u32, seed: u64) -> Self {
        TraversalMc { trials, seed }
    }

    /// Runs the trials split across `threads` scoped OS threads,
    /// merging the per-thread reach counters. Deterministic for
    /// a fixed `(seed, threads)` pair: thread `i` seeds its RNG with
    /// `seed + i` and runs a fixed share of the trials.
    pub fn score_parallel(&self, q: &QueryGraph, threads: usize) -> Result<Scores, Error> {
        self.score_chunked(q, threads, threads)
    }

    /// Runs the trials split into `chunks` independent RNG streams
    /// (chunk `i` seeds its RNG with `seed + i`), executed on up to
    /// `threads` scoped OS threads by the shared
    /// [`Estimator`] fan-out driver.
    ///
    /// The estimate depends only on `(trials, seed, chunks)` — the
    /// thread count affects scheduling, never the result — so
    /// `score_chunked(q, 8, 1)` is bit-identical to
    /// `score_chunked(q, 8, 8)`. This is what makes intra-query
    /// parallelism safe behind a result cache: the serving layer pins
    /// `chunks` and lets `threads` follow the hardware.
    pub fn score_chunked(
        &self,
        q: &QueryGraph,
        chunks: usize,
        threads: usize,
    ) -> Result<Scores, Error> {
        if self.trials == 0 {
            return Err(Error::ZeroTrials);
        }
        let chunks = chunks.max(1).min(self.trials as usize);
        let base = self.trials / chunks as u32;
        let extra = self.trials % chunks as u32;
        let total = merge_unit_counts(chunks, threads, q.graph().node_bound(), |i| {
            let share = base + u32::from((i as u32) < extra);
            run_trials(q, share, self.seed.wrapping_add(i as u64))
        });
        Ok(normalize(&total, self.trials))
    }
}

/// In-progress state of an incremental per-trial traversal run, shared
/// by [`TraversalMc`] and [`ReducedMc`](crate::ReducedMc) (which runs
/// it over the reduced graph).
pub struct McState<'q> {
    q: Cow<'q, QueryGraph>,
    rng: StdRng,
    last_sim: Vec<Stamp>,
    counts: Vec<u64>,
    stack: Vec<NodeId>,
    trials_done: u32,
    trials_total: u32,
}

impl<'q> McState<'q> {
    /// Builds the state over a borrowed or owned query graph (the
    /// plain traversal engine borrows the caller's graph; the
    /// reduction-first engine hands in its shrunken copy owned).
    pub(crate) fn begin_over(
        q: Cow<'q, QueryGraph>,
        trials: u32,
        seed: u64,
    ) -> Result<McState<'q>, Error> {
        if trials == 0 {
            return Err(Error::ZeroTrials);
        }
        let nb = q.graph().node_bound();
        Ok(McState {
            q,
            rng: StdRng::seed_from_u64(seed),
            last_sim: vec![0; nb],
            counts: vec![0; nb],
            stack: Vec::with_capacity(nb),
            trials_done: 0,
            trials_total: trials,
        })
    }

    /// Runs trials `trials_done+1 ..= trials_done+n` on the persistent
    /// stream; see [`NaiveState::advance`] for why the numbering
    /// continues across batches.
    fn advance(&mut self, n: u32) {
        advance_traversal(
            &self.q,
            &mut self.rng,
            &mut self.last_sim,
            &mut self.counts,
            &mut self.stack,
            self.trials_done,
            n,
        );
        self.trials_done += n;
    }

    pub(crate) fn step(&mut self, batch: u32) -> BatchStats {
        debug_assert_eq!(batch * BATCH_TRIALS, self.trials_done, "batches in order");
        let n = BATCH_TRIALS.min(self.trials_total - self.trials_done);
        self.advance(n);
        BatchStats {
            batch,
            trials: n,
            total_trials: self.trials_done,
        }
    }

    pub(crate) fn snapshot(&self) -> Scores {
        normalize(&self.counts, self.trials_done)
    }

    pub(crate) fn estimate(&self, node: NodeId) -> f64 {
        estimate_count(&self.counts, node, self.trials_done)
    }
}

impl Estimator for TraversalMc {
    type State<'q> = McState<'q>;

    fn trials(&self) -> u32 {
        self.trials
    }

    fn begin<'q>(&self, q: &'q QueryGraph) -> Result<McState<'q>, Error> {
        McState::begin_over(Cow::Borrowed(q), self.trials, self.seed)
    }

    fn step(&self, state: &mut McState<'_>, batch: u32) -> BatchStats {
        state.step(batch)
    }

    fn snapshot(&self, state: &McState<'_>) -> Scores {
        state.snapshot()
    }

    fn estimate(&self, state: &McState<'_>, node: NodeId) -> f64 {
        state.estimate(node)
    }

    fn finish(&self, state: McState<'_>) -> Scores {
        state.snapshot()
    }
}

/// Turns accumulated reach counts into scores (counts / trials).
fn normalize(counts: &[u64], trials: u32) -> Scores {
    let n = f64::from(trials.max(1));
    Scores::from_vec(counts.iter().map(|&c| c as f64 / n).collect())
}

/// One node's normalized count — the `Estimator::estimate` backend of
/// the per-trial engines.
fn estimate_count(counts: &[u64], node: NodeId, trials: u32) -> f64 {
    counts
        .get(node.index())
        .map(|&c| c as f64 / f64::from(trials.max(1)))
        .unwrap_or(0.0)
}

/// Runs trials `start+1 ..= start+n` of the iterative Traverse(G, s, t)
/// (visit a node at most once per trial via the `lastSim` stamp, flip
/// its presence coin, and only on success flip the coins of its
/// out-edges and schedule the successors), adding into `counts`.
fn advance_traversal(
    q: &QueryGraph,
    rng: &mut StdRng,
    last_sim: &mut [Stamp],
    counts: &mut [u64],
    stack: &mut Vec<NodeId>,
    start: u32,
    n: u32,
) {
    let g = q.graph();
    let source = q.source();
    for t in start + 1..=start + n {
        stack.clear();
        stack.push(source);
        while let Some(x) = stack.pop() {
            if last_sim[x.index()] == t {
                continue;
            }
            last_sim[x.index()] = t;
            if rng.gen::<f64>() < g.node_p(x).get() {
                counts[x.index()] += 1;
                for e in g.out_edges(x) {
                    if rng.gen::<f64>() < g.edge_q(e).get() {
                        let y = g.edge_dst(e);
                        if last_sim[y.index()] != t {
                            stack.push(y);
                        }
                    }
                }
            }
        }
    }
}

/// Runs `trials` traversal trials on a fresh stream seeded `seed` and
/// returns per-node reach counts (the chunk worker of
/// [`TraversalMc::score_chunked`], also used by the adaptive top-k
/// evaluator).
pub(crate) fn run_trials(q: &QueryGraph, trials: u32, seed: u64) -> Vec<u64> {
    let nb = q.graph().node_bound();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut last_sim: Vec<Stamp> = vec![0; nb];
    let mut counts = vec![0u64; nb];
    let mut stack: Vec<NodeId> = Vec::with_capacity(nb);
    advance_traversal(
        q,
        &mut rng,
        &mut last_sim,
        &mut counts,
        &mut stack,
        0,
        trials,
    );
    counts
}

impl Ranker for TraversalMc {
    fn name(&self) -> &'static str {
        "Rel(MC)"
    }

    fn score(&self, q: &QueryGraph) -> Result<Scores, Error> {
        self.drive(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biorank_graph::{exact, generate, NodeId, Prob, ProbGraph};

    fn p(v: f64) -> Prob {
        Prob::new(v).unwrap()
    }

    fn diamond() -> (QueryGraph, NodeId) {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let a = g.add_node(p(1.0));
        let b = g.add_node(p(1.0));
        let t = g.add_node(p(1.0));
        g.add_edge(s, a, p(0.5)).unwrap();
        g.add_edge(s, b, p(0.5)).unwrap();
        g.add_edge(a, t, p(0.5)).unwrap();
        g.add_edge(b, t, p(0.5)).unwrap();
        (QueryGraph::new(g, s, vec![t]).unwrap(), t)
    }

    #[test]
    fn zero_trials_is_an_error() {
        let (q, _) = diamond();
        assert!(matches!(
            TraversalMc::new(0, 1).score(&q),
            Err(Error::ZeroTrials)
        ));
        assert!(matches!(
            NaiveMc::new(0, 1).score(&q),
            Err(Error::ZeroTrials)
        ));
    }

    #[test]
    fn traversal_converges_to_exact_diamond() {
        let (q, t) = diamond();
        // exact: 1 − (1 − 0.25)² = 0.4375
        let est = TraversalMc::new(40_000, 42).score(&q).unwrap().get(t);
        assert!((est - 0.4375).abs() < 0.01, "estimate {est}");
    }

    #[test]
    fn naive_converges_to_exact_diamond() {
        let (q, t) = diamond();
        let est = NaiveMc::new(40_000, 42).score(&q).unwrap().get(t);
        assert!((est - 0.4375).abs() < 0.01, "estimate {est}");
    }

    #[test]
    fn source_score_equals_source_presence() {
        let (q, _) = diamond();
        let s = TraversalMc::new(5_000, 7).score(&q).unwrap();
        assert_eq!(s.get(q.source()), 1.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (q, t) = diamond();
        let a = TraversalMc::new(1_000, 5).score(&q).unwrap().get(t);
        let b = TraversalMc::new(1_000, 5).score(&q).unwrap().get(t);
        assert_eq!(a, b);
        let c = TraversalMc::new(1_000, 6).score(&q).unwrap().get(t);
        assert_ne!(a, c, "different seeds should (almost surely) differ");
    }

    #[test]
    fn node_failures_respected() {
        // s → m(p=0.5) → t: r(t) = 0.5
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let m = g.add_node(p(0.5));
        let t = g.add_node(p(1.0));
        g.add_edge(s, m, p(1.0)).unwrap();
        g.add_edge(m, t, p(1.0)).unwrap();
        let q = QueryGraph::new(g, s, vec![t]).unwrap();
        let est = TraversalMc::new(40_000, 3).score(&q).unwrap().get(t);
        assert!((est - 0.5).abs() < 0.01, "estimate {est}");
    }

    #[test]
    fn both_engines_agree_with_enumeration_on_workflows() {
        let params = generate::WorkflowParams {
            layers: 2,
            width: 3,
            answers: 2,
            density: 0.5,
            node_prob: (0.4, 1.0),
            edge_prob: (0.4, 1.0),
        };
        for seed in 0..3u64 {
            let q = generate::layered_workflow(&params, seed);
            let trav = TraversalMc::new(60_000, 11).score(&q).unwrap();
            let naive = NaiveMc::new(60_000, 11).score(&q).unwrap();
            for &a in q.answers() {
                let truth = match exact::enumerate(q.graph(), q.source(), a) {
                    Ok(r) => r,
                    Err(_) => exact::factoring(q.graph(), q.source(), a, None).unwrap(),
                };
                let et = trav.get(a);
                let en = naive.get(a);
                assert!((et - truth).abs() < 0.015, "traversal {et} vs {truth}");
                assert!((en - truth).abs() < 0.015, "naive {en} vs {truth}");
            }
        }
    }

    #[test]
    fn parallel_matches_accuracy() {
        let (q, t) = diamond();
        let est = TraversalMc::new(40_000, 9)
            .score_parallel(&q, 4)
            .unwrap()
            .get(t);
        assert!((est - 0.4375).abs() < 0.01, "estimate {est}");
    }

    #[test]
    fn parallel_is_deterministic_per_thread_count() {
        let (q, t) = diamond();
        let a = TraversalMc::new(8_000, 2)
            .score_parallel(&q, 3)
            .unwrap()
            .get(t);
        let b = TraversalMc::new(8_000, 2)
            .score_parallel(&q, 3)
            .unwrap()
            .get(t);
        assert_eq!(a, b);
    }

    #[test]
    fn chunked_result_is_independent_of_thread_count() {
        let (q, _) = diamond();
        let mc = TraversalMc::new(8_000, 2);
        let sequential = mc.score_chunked(&q, 8, 1).unwrap();
        for threads in [2usize, 3, 8, 16] {
            let parallel = mc.score_chunked(&q, 8, threads).unwrap();
            for n in 0..q.graph().node_bound() {
                let node = NodeId::from_index(n);
                assert_eq!(
                    sequential.get(node).to_bits(),
                    parallel.get(node).to_bits(),
                    "threads={threads} node={n}"
                );
            }
        }
    }

    #[test]
    fn single_chunk_equals_plain_score() {
        let (q, t) = diamond();
        let mc = TraversalMc::new(4_000, 13);
        let plain = mc.score(&q).unwrap().get(t);
        let chunked = mc.score_chunked(&q, 1, 4).unwrap().get(t);
        assert_eq!(plain.to_bits(), chunked.to_bits());
    }

    #[test]
    fn handles_cyclic_graphs() {
        // MC does not require a DAG: s → a ⇄ b → t.
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let a = g.add_node(p(1.0));
        let b = g.add_node(p(1.0));
        let t = g.add_node(p(1.0));
        g.add_edge(s, a, p(0.8)).unwrap();
        g.add_edge(a, b, p(0.8)).unwrap();
        g.add_edge(b, a, p(0.8)).unwrap();
        g.add_edge(b, t, p(0.8)).unwrap();
        let q = QueryGraph::new(g, s, vec![t]).unwrap();
        let est = TraversalMc::new(40_000, 4).score(&q).unwrap().get(t);
        let truth = exact::enumerate(q.graph(), q.source(), t).unwrap();
        assert!((est - truth).abs() < 0.01, "{est} vs {truth}");
    }
}
