//! Reliability ranking strategies beyond plain Monte Carlo (§3.1(2-3)).
//!
//! * [`ReducedMc`] — run the graph reductions on the whole query graph
//!   (protecting the source and the answer set), then Monte Carlo on the
//!   shrunken graph. This is the paper's fastest configuration
//!   ("R&M2" in Fig. 8a: reduction + 1000 trials beats even the closed
//!   solution).
//! * [`ClosedReliability`] — the per-target evaluation of §3.1(3): for
//!   each answer node, prune to its subgraph and apply the reduction
//!   rules; fully reducible instances (Theorem 3.2) yield the exact
//!   score directly. When the rules get stuck the evaluator falls back
//!   to exact factoring, and as a last resort to traversal Monte Carlo —
//!   so it is total on every input while remaining exact whenever the
//!   paper's theory applies.

use biorank_graph::{exact, reduction, QueryGraph};

use crate::estimator::{BatchStats, Estimator};
use crate::mc::McState;
use crate::{Error, Ranker, Scores, TraversalMc};

/// Graph reductions followed by traversal Monte Carlo.
#[derive(Clone, Copy, Debug)]
pub struct ReducedMc {
    /// Monte Carlo trials on the reduced graph.
    pub trials: u32,
    /// RNG seed.
    pub seed: u64,
}

impl ReducedMc {
    /// Creates the strategy with the given trial count and seed.
    pub fn new(trials: u32, seed: u64) -> Self {
        ReducedMc { trials, seed }
    }

    /// Scores and also returns the reduction statistics (used by the
    /// Fig. 8a experiment to report the −78% shrinkage).
    pub fn score_with_stats(
        &self,
        q: &QueryGraph,
    ) -> Result<(Scores, reduction::ReductionStats), Error> {
        let mut reduced = q.clone();
        let source = reduced.source();
        let answers: Vec<_> = reduced.answers().to_vec();
        let stats = reduction::reduce(reduced.graph_mut(), source, &answers);
        let scores = TraversalMc::new(self.trials, self.seed).score(&reduced)?;
        // Scores are indexed by node id; protected nodes (source +
        // answers) survive reduction with stable ids, so the score
        // vector is directly usable for the answer set.
        Ok((scores, stats))
    }
}

impl Ranker for ReducedMc {
    fn name(&self) -> &'static str {
        "Rel(R&MC)"
    }

    fn score(&self, q: &QueryGraph) -> Result<Scores, Error> {
        self.score_with_stats(q).map(|(s, _)| s)
    }
}

/// The incremental contract for the paper's headline configuration:
/// reduce once in [`begin`](Estimator::begin), then run the traversal
/// batches over the shrunken graph. Protected nodes (source + answers)
/// keep stable ids through reduction, so snapshots index the answer
/// set exactly like every other engine — which is what lets the
/// [`AdaptiveRunner`](crate::AdaptiveRunner) certify `rel` queries
/// too.
impl Estimator for ReducedMc {
    type State<'q> = McState<'q>;

    fn trials(&self) -> u32 {
        self.trials
    }

    fn begin<'q>(&self, q: &'q QueryGraph) -> Result<McState<'q>, Error> {
        let mut reduced = q.clone();
        let source = reduced.source();
        let answers: Vec<_> = reduced.answers().to_vec();
        reduction::reduce(reduced.graph_mut(), source, &answers);
        McState::begin_over(std::borrow::Cow::Owned(reduced), self.trials, self.seed)
    }

    fn step(&self, state: &mut McState<'_>, batch: u32) -> BatchStats {
        state.step(batch)
    }

    fn snapshot(&self, state: &McState<'_>) -> Scores {
        state.snapshot()
    }

    fn estimate(&self, state: &McState<'_>, node: biorank_graph::NodeId) -> f64 {
        state.estimate(node)
    }

    fn finish(&self, state: McState<'_>) -> Scores {
        state.snapshot()
    }
}

/// Per-target closed-form reliability with exact fallbacks.
#[derive(Clone, Copy, Debug)]
pub struct ClosedReliability {
    /// Branch budget for the factoring fallback.
    pub factoring_budget: u64,
    /// Trials for the Monte Carlo last resort.
    pub fallback_trials: u32,
    /// Seed for the Monte Carlo last resort.
    pub seed: u64,
}

impl Default for ClosedReliability {
    fn default() -> Self {
        ClosedReliability {
            factoring_budget: 1 << 20,
            fallback_trials: 10_000,
            seed: 0xB10_4A4C,
        }
    }
}

/// How each answer's score was obtained, for the efficiency experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolveMode {
    /// Reduction rules alone produced the exact value (Theorem 3.2 case).
    Closed,
    /// Exact factoring finished within budget.
    Factoring,
    /// Monte Carlo estimate (budget exhausted).
    MonteCarlo,
}

impl ClosedReliability {
    /// Scores all answers, reporting how each was solved.
    pub fn score_with_modes(&self, q: &QueryGraph) -> Result<(Scores, Vec<SolveMode>), Error> {
        let mut scores = Scores::zeroed(q.graph().node_bound());
        let mut modes = Vec::with_capacity(q.answers().len());
        for &t in q.answers() {
            let st = q.single_target(t)?;
            let Some(target) = st.target else {
                scores.set(t, 0.0);
                modes.push(SolveMode::Closed);
                continue;
            };
            match reduction::closed_form(st.graph.clone(), st.source, target) {
                reduction::ClosedForm::Solved(r) => {
                    scores.set(t, r);
                    modes.push(SolveMode::Closed);
                }
                reduction::ClosedForm::Stuck { .. } => {
                    match exact::factoring(
                        &st.graph,
                        st.source,
                        target,
                        Some(self.factoring_budget),
                    ) {
                        Ok(r) => {
                            scores.set(t, r);
                            modes.push(SolveMode::Factoring);
                        }
                        Err(biorank_graph::Error::TooLarge { .. }) => {
                            let sub = QueryGraph::new(st.graph, st.source, vec![target])?;
                            let est =
                                TraversalMc::new(self.fallback_trials, self.seed).score(&sub)?;
                            scores.set(t, est.get(target));
                            modes.push(SolveMode::MonteCarlo);
                        }
                        Err(e) => return Err(e.into()),
                    }
                }
            }
        }
        Ok((scores, modes))
    }
}

impl Ranker for ClosedReliability {
    fn name(&self) -> &'static str {
        "Rel(closed)"
    }

    fn score(&self, q: &QueryGraph) -> Result<Scores, Error> {
        self.score_with_modes(q).map(|(s, _)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biorank_graph::{generate, NodeId, Prob, ProbGraph};

    fn p(v: f64) -> Prob {
        Prob::new(v).unwrap()
    }

    fn diamond() -> (QueryGraph, NodeId) {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let a = g.add_node(p(1.0));
        let b = g.add_node(p(1.0));
        let t = g.add_node(p(1.0));
        g.add_edge(s, a, p(0.5)).unwrap();
        g.add_edge(s, b, p(0.5)).unwrap();
        g.add_edge(a, t, p(0.5)).unwrap();
        g.add_edge(b, t, p(0.5)).unwrap();
        (QueryGraph::new(g, s, vec![t]).unwrap(), t)
    }

    #[test]
    fn closed_solves_diamond_exactly() {
        let (q, t) = diamond();
        let (scores, modes) = ClosedReliability::default().score_with_modes(&q).unwrap();
        assert_eq!(modes, vec![SolveMode::Closed]);
        assert!((scores.get(t) - 0.4375).abs() < 1e-12);
    }

    #[test]
    fn closed_falls_back_on_wheatstone() {
        let (g, s, t) = reduction::wheatstone(p(0.5));
        let truth = exact::enumerate(&g, s, t).unwrap();
        let q = QueryGraph::new(g, s, vec![t]).unwrap();
        let (scores, modes) = ClosedReliability::default().score_with_modes(&q).unwrap();
        assert_eq!(modes, vec![SolveMode::Factoring]);
        assert!((scores.get(t) - truth).abs() < 1e-9);
    }

    #[test]
    fn closed_handles_unreachable_answers() {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let t = g.add_node(p(1.0));
        let island = g.add_node(p(1.0));
        g.add_edge(s, t, p(0.9)).unwrap();
        let q = QueryGraph::new(g, s, vec![t, island]).unwrap();
        let (scores, _) = ClosedReliability::default().score_with_modes(&q).unwrap();
        assert!((scores.get(t) - 0.9).abs() < 1e-12);
        assert_eq!(scores.get(island), 0.0);
    }

    #[test]
    fn reduced_mc_matches_plain_mc_statistically() {
        let params = generate::WorkflowParams::default();
        let q = generate::layered_workflow(&params, 21);
        let plain = TraversalMc::new(30_000, 1).score(&q).unwrap();
        let (reduced, stats) = ReducedMc::new(30_000, 2).score_with_stats(&q).unwrap();
        assert!(stats.shrink_ratio() > 0.0, "workflow graphs must shrink");
        for &a in q.answers() {
            let d = (plain.get(a) - reduced.get(a)).abs();
            assert!(
                d < 0.02,
                "answer {a}: plain {} vs reduced {}",
                plain.get(a),
                reduced.get(a)
            );
        }
    }

    #[test]
    fn closed_falls_back_to_monte_carlo_when_budget_exhausted() {
        // A dense random DAG is irreducible; with a factoring budget of
        // 1 the evaluator must fall back to Monte Carlo and still
        // produce a sane estimate.
        let (g, s) = generate::random_dag(14, 0.5, 3, (0.5, 1.0), (0.3, 0.9));
        let t = g.nodes().last().unwrap();
        let q = QueryGraph::new(g, s, vec![t]).unwrap();
        let strategy = ClosedReliability {
            factoring_budget: 1,
            fallback_trials: 60_000,
            seed: 5,
        };
        let (scores, modes) = strategy.score_with_modes(&q).unwrap();
        assert_eq!(modes, vec![SolveMode::MonteCarlo]);
        let truth = ClosedReliability::default().score(&q).unwrap().get(t);
        assert!(
            (scores.get(t) - truth).abs() < 0.02,
            "MC fallback {} vs exact {truth}",
            scores.get(t)
        );
    }

    #[test]
    fn divergent_star_only_probabilistic_methods_discriminate() {
        // Paper Discussion §5: on divergent star schemas "InEdge and
        // PathCount cannot be used as each piece of evidence has only
        // exactly one path and taking into account the strength of each
        // individual path is the only way to rank results."
        let q = generate::divergent_star(8, 3, 11, (0.4, 1.0), (0.2, 0.95));
        let rel = ClosedReliability::default().score(&q).unwrap();
        let inedge = crate::InEdge.score(&q).unwrap();
        let pathc = crate::PathCount.score(&q).unwrap();
        let rel_values: Vec<f64> = q.answers().iter().map(|&a| rel.get(a)).collect();
        let distinct = {
            let mut v = rel_values.clone();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
            v.len()
        };
        assert!(distinct > 1, "reliability must discriminate chains");
        for &a in q.answers() {
            assert_eq!(inedge.get(a), 1.0, "InEdge ties every answer");
            assert_eq!(pathc.get(a), 1.0, "PathCount ties every answer");
        }
    }

    #[test]
    fn closed_matches_mc_on_workflows() {
        let q = generate::layered_workflow(&generate::WorkflowParams::default(), 33);
        let exact_scores = ClosedReliability::default().score(&q).unwrap();
        let mc = TraversalMc::new(60_000, 8).score(&q).unwrap();
        for &a in q.answers() {
            let d = (exact_scores.get(a) - mc.get(a)).abs();
            assert!(
                d < 0.015,
                "answer {a}: closed {} vs MC {}",
                exact_scores.get(a),
                mc.get(a)
            );
        }
    }
}
