//! Cheap feature extraction for the cost-based query planner.
//!
//! The planner never runs a candidate strategy to find out what it
//! costs — it reads a small feature vector off the integrated query
//! graph and scores a calibrated model (see [`crate::planner`]). The
//! expensive-looking part, one pass of the paper's reduction rules
//! over a throwaway clone, is `O(V + E)` to fixpoint and is exactly
//! the preprocessing `ReducedMc` would run anyway — so extraction
//! stays far below the cost of even the cheapest Monte Carlo run,
//! and callers (the service's query engine) cache it per query.

use biorank_graph::{reduction, topo, QueryGraph};

/// Structural features of one integrated query graph, independent of
/// any per-request knobs. Extract once per resident graph and reuse;
/// see [`PlanFeatures`] for the request-specific completion.
///
/// Equality is exact on every field — two equal feature sets are
/// planned identically by construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GraphFeatures {
    /// Live node count of the query graph.
    pub nodes: u32,
    /// Live edge count of the query graph.
    pub edges: u32,
    /// Answer-set size `|A|`.
    pub answers: u32,
    /// `true` when the graph is a DAG (the word engine's single-pass
    /// fast path; cyclic graphs pay its fixpoint fallback).
    pub acyclic: bool,
    /// Node count after one run of the §3.1(2) reduction rules with
    /// the source and every answer protected.
    pub reduced_nodes: u32,
    /// Edge count after the same reduction — the graph `ReducedMc`
    /// actually samples.
    pub reduced_edges: u32,
    /// Theorem 3.2 verdict for the query's schema shape (root → every
    /// output set), when the caller knows it. Schema-reducible
    /// queries are the ones whose per-answer subgraphs the closed
    /// solution is guaranteed to solve without factoring fallbacks.
    pub schema_reducible: bool,
}

impl GraphFeatures {
    /// Extracts the structural features of `q`: live counts, a DAG
    /// check, and the reduction residual (rules run on a clone with
    /// the source and answer set protected, mirroring
    /// [`crate::ReducedMc`]). `schema_reducible` starts `false`;
    /// callers holding a Theorem 3.2 verdict set it via
    /// [`with_schema_reducible`](Self::with_schema_reducible).
    pub fn extract(q: &QueryGraph) -> GraphFeatures {
        let mut reduced = q.graph().clone();
        let answers: Vec<_> = q.answers().to_vec();
        let stats = reduction::reduce(&mut reduced, q.source(), &answers);
        GraphFeatures {
            nodes: stats.nodes_before as u32,
            edges: stats.edges_before as u32,
            answers: answers.len() as u32,
            acyclic: topo::is_dag(q.graph()),
            reduced_nodes: stats.nodes_after as u32,
            reduced_edges: stats.edges_after as u32,
            schema_reducible: false,
        }
    }

    /// The same features with the Theorem 3.2 schema verdict filled
    /// in.
    pub fn with_schema_reducible(mut self, reducible: bool) -> GraphFeatures {
        self.schema_reducible = reducible;
        self
    }

    /// Fraction of edges the reduction removed, in `[0, 1]`.
    pub fn shrink(&self) -> f64 {
        if self.edges == 0 {
            return 0.0;
        }
        f64::from(self.edges - self.reduced_edges.min(self.edges)) / f64::from(self.edges)
    }
}

/// The trial policy of the request being planned, mirrored from the
/// service spec without depending on it: the planner only needs the
/// budget and whether early stopping applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TrialsPolicy {
    /// Run exactly this many trials.
    Fixed(u32),
    /// Bound-certified early stopping under this trial ceiling.
    Adaptive {
        /// Hard trial ceiling when the ranking never certifies.
        max_trials: u32,
    },
}

impl TrialsPolicy {
    /// The hard trial budget of either policy.
    pub fn budget(&self) -> u32 {
        match *self {
            TrialsPolicy::Fixed(n) => n,
            TrialsPolicy::Adaptive { max_trials } => max_trials,
        }
    }
}

/// The complete planner input: graph structure plus the per-request
/// knobs that move the crossovers (requested k, trial policy).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PlanFeatures {
    /// Structural features of the integrated query graph.
    pub graph: GraphFeatures,
    /// Certified-prefix size when the request opts into top-k
    /// certification (`None` = the full ranking must resolve).
    pub top_k: Option<u32>,
    /// The request's trial policy.
    pub trials: TrialsPolicy,
}

impl PlanFeatures {
    /// Combines cached graph features with one request's knobs.
    pub fn for_request(
        graph: GraphFeatures,
        top_k: Option<u32>,
        trials: TrialsPolicy,
    ) -> PlanFeatures {
        PlanFeatures {
            graph,
            top_k,
            trials,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biorank_graph::{Prob, ProbGraph};

    fn p(v: f64) -> Prob {
        Prob::new(v).unwrap()
    }

    /// s → a → b → t: serial chain, fully reducible around the
    /// protected endpoints.
    fn chain() -> QueryGraph {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let a = g.add_node(p(0.9));
        let b = g.add_node(p(0.8));
        let t = g.add_node(p(0.7));
        g.add_edge(s, a, p(0.9)).unwrap();
        g.add_edge(a, b, p(0.9)).unwrap();
        g.add_edge(b, t, p(0.9)).unwrap();
        QueryGraph::new(g, s, vec![t]).unwrap()
    }

    fn cyclic() -> QueryGraph {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let a = g.add_node(p(0.9));
        let b = g.add_node(p(0.8));
        let t = g.add_node(p(0.7));
        g.add_edge(s, a, p(0.9)).unwrap();
        g.add_edge(a, b, p(0.9)).unwrap();
        g.add_edge(b, a, p(0.9)).unwrap();
        g.add_edge(b, t, p(0.9)).unwrap();
        QueryGraph::new(g, s, vec![t]).unwrap()
    }

    #[test]
    fn chain_reduces_to_protected_nodes() {
        let f = GraphFeatures::extract(&chain());
        assert_eq!(f.nodes, 4);
        assert_eq!(f.edges, 3);
        assert_eq!(f.answers, 1);
        assert!(f.acyclic);
        // Serial collapses leave only source → target.
        assert_eq!(f.reduced_nodes, 2);
        assert_eq!(f.reduced_edges, 1);
        assert!(f.shrink() > 0.5);
        assert!(!f.schema_reducible);
        assert!(f.with_schema_reducible(true).schema_reducible);
    }

    #[test]
    fn cycles_are_detected() {
        let f = GraphFeatures::extract(&cyclic());
        assert!(!f.acyclic);
    }

    #[test]
    fn extraction_leaves_the_graph_untouched() {
        let q = chain();
        let before_nodes = q.graph().node_count();
        let before_edges = q.graph().edge_count();
        let _ = GraphFeatures::extract(&q);
        assert_eq!(q.graph().node_count(), before_nodes);
        assert_eq!(q.graph().edge_count(), before_edges);
    }

    #[test]
    fn extraction_is_deterministic() {
        let a = GraphFeatures::extract(&chain());
        let b = GraphFeatures::extract(&chain());
        assert_eq!(a, b);
    }

    #[test]
    fn trials_policy_budget() {
        assert_eq!(TrialsPolicy::Fixed(500).budget(), 500);
        assert_eq!(TrialsPolicy::Adaptive { max_trials: 9 }.budget(), 9);
    }
}
