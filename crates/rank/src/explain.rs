//! Evidence-path explanations: *why* is an answer ranked where it is?
//!
//! The paper's motivating user validates candidate functions manually
//! (§1) — she needs to see the supporting evidence, not just a score.
//! This module enumerates the simple source→answer paths of a query
//! graph together with each path's standalone probability (the product
//! of its node and edge probabilities), ordered strongest first.
//!
//! Path probabilities are not additive (paths share segments — that is
//! the whole point of the reliability semantics), so the explanation
//! also reports the exact reliability and the noisy-or of the path
//! products as lower/upper context for the user.

use biorank_graph::{EdgeId, NodeId, Prob, QueryGraph};

use crate::{Error, Ranker};

/// One evidence path from the query node to an answer.
#[derive(Clone, Debug)]
pub struct EvidencePath {
    /// Nodes from source to answer, inclusive.
    pub nodes: Vec<NodeId>,
    /// The edges traversed (`nodes.len() - 1` of them).
    pub edges: Vec<EdgeId>,
    /// Product of all node and edge probabilities along the path,
    /// excluding the source's (the query node is always present).
    pub probability: f64,
}

impl EvidencePath {
    /// Number of edges in the path.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// `true` for the degenerate source==answer path.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// A ranked answer's full evidence explanation.
#[derive(Clone, Debug)]
pub struct Explanation {
    /// The explained answer node.
    pub answer: NodeId,
    /// All simple evidence paths, strongest first (possibly truncated,
    /// see [`explain`]).
    pub paths: Vec<EvidencePath>,
    /// `true` when enumeration stopped at the path budget.
    pub truncated: bool,
    /// The exact reliability score of the answer.
    pub reliability: f64,
    /// Noisy-or of the path probabilities — what the score *would* be
    /// if all paths were independent (the propagation view). The gap to
    /// `reliability` quantifies how much evidence the paths share.
    pub independent_paths_score: f64,
}

/// Enumerates the evidence paths of `answer`, strongest first.
///
/// `max_paths` bounds the enumeration (default 64 when `None`); query
/// graphs are DAGs in practice but the walker also guards against
/// cycles by keeping paths simple.
pub fn explain(
    q: &QueryGraph,
    answer: NodeId,
    max_paths: Option<usize>,
) -> Result<Explanation, Error> {
    let budget = max_paths.unwrap_or(64);
    let st = q.single_target(answer)?;
    let mut paths = Vec::new();
    let mut truncated = false;
    if let Some(target) = st.target {
        // DFS over simple paths in the pruned per-answer subgraph.
        let g = &st.graph;
        let mut on_path = vec![false; g.node_bound()];
        let mut node_stack = vec![st.source];
        let mut edge_stack: Vec<EdgeId> = Vec::new();
        let mut iter_stack: Vec<Vec<EdgeId>> = vec![g.out_edges(st.source).collect()];
        on_path[st.source.index()] = true;
        while let Some(frontier) = iter_stack.last_mut() {
            let Some(e) = frontier.pop() else {
                // Backtrack.
                iter_stack.pop();
                if let Some(n) = node_stack.pop() {
                    on_path[n.index()] = false;
                }
                edge_stack.pop();
                continue;
            };
            let y = g.edge_dst(e);
            if on_path[y.index()] {
                continue; // keep paths simple
            }
            edge_stack.push(e);
            node_stack.push(y);
            on_path[y.index()] = true;
            if y == target {
                if paths.len() >= budget {
                    truncated = true;
                    break;
                }
                let mut p = Prob::ONE;
                for &n in &node_stack[1..] {
                    p = p.and(g.node_p(n));
                }
                for &pe in &edge_stack {
                    p = p.and(g.edge_q(pe));
                }
                paths.push(EvidencePath {
                    nodes: node_stack.clone(),
                    edges: edge_stack.clone(),
                    probability: p.get(),
                });
                // A target with out-edges cannot extend a simple path
                // back to itself; backtrack immediately.
                on_path[y.index()] = false;
                node_stack.pop();
                edge_stack.pop();
                continue;
            }
            iter_stack.push(g.out_edges(y).collect());
        }
        paths.sort_by(|a, b| {
            b.probability
                .partial_cmp(&a.probability)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
    }
    let reliability = crate::ClosedReliability::default().score(q)?.get(answer);
    let independent = Prob::any(paths.iter().map(|p| Prob::clamped(p.probability)));
    Ok(Explanation {
        answer,
        paths,
        truncated,
        reliability,
        independent_paths_score: independent.get(),
    })
}

/// Renders an explanation using a node-labelling callback.
pub fn render(
    q: &QueryGraph,
    explanation: &Explanation,
    label: impl Fn(NodeId) -> String,
) -> String {
    use std::fmt::Write;
    // The per-answer subgraph has remapped ids; re-derive labels through
    // the original graph is impossible here, so we label via the
    // *subgraph* node labels captured by the graph itself.
    let _ = q;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: reliability {:.4} ({} evidence path{}{}; independent-paths bound {:.4})",
        label(explanation.answer),
        explanation.reliability,
        explanation.paths.len(),
        if explanation.paths.len() == 1 {
            ""
        } else {
            "s"
        },
        if explanation.truncated {
            "+, truncated"
        } else {
            ""
        },
        explanation.independent_paths_score,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use biorank_graph::ProbGraph;

    fn p(v: f64) -> Prob {
        Prob::new(v).unwrap()
    }

    fn diamond() -> (QueryGraph, NodeId) {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let a = g.add_node(p(0.9));
        let b = g.add_node(p(0.8));
        let t = g.add_node(p(1.0));
        g.add_edge(s, a, p(0.5)).unwrap();
        g.add_edge(s, b, p(0.4)).unwrap();
        g.add_edge(a, t, p(0.6)).unwrap();
        g.add_edge(b, t, p(0.7)).unwrap();
        (QueryGraph::new(g, s, vec![t]).unwrap(), t)
    }

    #[test]
    fn diamond_has_two_paths_with_products() {
        let (q, t) = diamond();
        let ex = explain(&q, t, None).unwrap();
        assert_eq!(ex.paths.len(), 2);
        assert!(!ex.truncated);
        // Path via a: 0.5·0.9·0.6 = 0.27; via b: 0.4·0.8·0.7 = 0.224.
        assert!((ex.paths[0].probability - 0.27).abs() < 1e-12);
        assert!((ex.paths[1].probability - 0.224).abs() < 1e-12);
        assert_eq!(ex.paths[0].len(), 2);
        // Independent paths: 1 − (1−0.27)(1−0.224) = 0.43352
        assert!((ex.independent_paths_score - 0.43352).abs() < 1e-9);
        // Paths are edge-disjoint here, so reliability == noisy-or.
        assert!((ex.reliability - ex.independent_paths_score).abs() < 1e-9);
    }

    #[test]
    fn shared_segment_shows_reliability_gap() {
        // Fig. 4a: shared 0.5 edge; reliability 0.5, independent 0.75.
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let m = g.add_node(p(1.0));
        let a = g.add_node(p(1.0));
        let b = g.add_node(p(1.0));
        let u = g.add_node(p(1.0));
        g.add_edge(s, m, p(0.5)).unwrap();
        g.add_edge(m, a, p(1.0)).unwrap();
        g.add_edge(m, b, p(1.0)).unwrap();
        g.add_edge(a, u, p(1.0)).unwrap();
        g.add_edge(b, u, p(1.0)).unwrap();
        let q = QueryGraph::new(g, s, vec![u]).unwrap();
        let ex = explain(&q, u, None).unwrap();
        assert_eq!(ex.paths.len(), 2);
        assert!((ex.reliability - 0.5).abs() < 1e-9);
        assert!((ex.independent_paths_score - 0.75).abs() < 1e-9);
    }

    #[test]
    fn unreachable_answer_has_no_paths() {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let t = g.add_node(p(1.0));
        let island = g.add_node(p(1.0));
        g.add_edge(s, t, p(0.5)).unwrap();
        let q = QueryGraph::new(g, s, vec![t, island]).unwrap();
        let ex = explain(&q, island, None).unwrap();
        assert!(ex.paths.is_empty());
        assert_eq!(ex.reliability, 0.0);
        assert_eq!(ex.independent_paths_score, 0.0);
    }

    #[test]
    fn budget_truncates_enumeration() {
        // 4 stacked diamonds: 16 paths; budget 5.
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let mut cur = s;
        for _ in 0..4 {
            let a = g.add_node(p(1.0));
            let b = g.add_node(p(1.0));
            let j = g.add_node(p(1.0));
            g.add_edge(cur, a, p(0.5)).unwrap();
            g.add_edge(cur, b, p(0.5)).unwrap();
            g.add_edge(a, j, p(0.5)).unwrap();
            g.add_edge(b, j, p(0.5)).unwrap();
            cur = j;
        }
        let q = QueryGraph::new(g, s, vec![cur]).unwrap();
        let full = explain(&q, cur, Some(100)).unwrap();
        assert_eq!(full.paths.len(), 16);
        assert!(!full.truncated);
        let cut = explain(&q, cur, Some(5)).unwrap();
        assert_eq!(cut.paths.len(), 5);
        assert!(cut.truncated);
    }

    #[test]
    fn paths_are_sorted_strongest_first() {
        let (q, t) = diamond();
        let ex = explain(&q, t, None).unwrap();
        for w in ex.paths.windows(2) {
            assert!(w[0].probability >= w[1].probability);
        }
    }

    #[test]
    fn render_mentions_key_numbers() {
        let (q, t) = diamond();
        let ex = explain(&q, t, None).unwrap();
        let text = render(&q, &ex, |n| format!("node{}", n.index()));
        assert!(text.contains("2 evidence paths"));
        assert!(text.contains("reliability 0.43"));
    }
}
