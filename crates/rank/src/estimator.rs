//! The unified incremental estimator contract.
//!
//! All Monte Carlo reliability engines ([`NaiveMc`](crate::NaiveMc),
//! [`TraversalMc`](crate::TraversalMc), [`WordMc`](crate::WordMc), and
//! the reduction-first [`ReducedMc`](crate::ReducedMc)) estimate the
//! same quantity from the same `(trials, seed)` contract. [`Estimator`]
//! factors out what used to be four bespoke run loops into one
//! incremental protocol:
//!
//! * [`begin`](Estimator::begin) builds the engine's run state for a
//!   query graph;
//! * [`step`](Estimator::step) executes **one batch of
//!   [`BATCH_TRIALS`] (64) trials** — a single `u64` mask word for the
//!   word-parallel engine, a 64-trial chunk of the sequential stream
//!   for the per-trial engines;
//! * [`snapshot`](Estimator::snapshot) exposes the running estimates
//!   (normalized by the trials executed so far);
//! * [`finish`](Estimator::finish) consumes the state into final
//!   [`Scores`].
//!
//! **Determinism contract:** driving every batch of an engine
//! configured for `trials` total produces *bit-identical* scores to
//! the engine's one-shot `score()` — the RNG schedule is a function of
//! `(trials, seed)` alone, never of how the run was sliced into steps.
//! That is what lets [`AdaptiveRunner`](crate::AdaptiveRunner) stop a
//! run early: a run that goes the distance is indistinguishable from a
//! fixed-trial run, and a run stopped after `b` batches equals a fixed
//! run of `64·b` trials.
//!
//! The module also hosts [`merge_unit_counts`], the shared fan-out
//! scheduler behind `TraversalMc::score_chunked` and
//! `WordMc::score_parallel` — both spread independent count-producing
//! work units over scoped OS threads and merge by `u64` addition, so
//! the wave layout is invisible in the output.

use biorank_graph::QueryGraph;

use crate::{Error, Scores};

/// Trials per incremental batch: one bit of a machine word each, so
/// the word-parallel engine's natural unit is everyone's unit.
pub const BATCH_TRIALS: u32 = 64;

/// What one [`Estimator::step`] call reports back.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchStats {
    /// Index of the batch just executed (0-based).
    pub batch: u32,
    /// Trials this batch contributed (64, or fewer for the final
    /// partial batch of a trial count not divisible by 64).
    pub trials: u32,
    /// Cumulative trials executed across all batches so far.
    pub total_trials: u32,
}

/// An incremental Monte Carlo reliability estimator.
///
/// See the [module docs](self) for the contract. Implementations keep
/// their public `score`/`score_parallel` entry points as thin wrappers
/// over [`drive`](Estimator::drive), so the incremental protocol is
/// *the* run loop, not a parallel code path.
pub trait Estimator {
    /// The engine's in-progress run state. Parameterized by the
    /// query-graph borrow so per-trial engines can traverse the
    /// caller's graph in place — `begin` must not have to copy a
    /// graph to start a run (the reduction-first engine, which really
    /// does build its own shrunken graph, stores it owned via
    /// [`Cow`](std::borrow::Cow)).
    type State<'q>;

    /// The total trial budget of a full run (the adaptive ceiling).
    fn trials(&self) -> u32;

    /// Builds the run state for `q`. Fails with
    /// [`Error::ZeroTrials`] when the engine was configured for zero
    /// trials.
    fn begin<'q>(&self, q: &'q QueryGraph) -> Result<Self::State<'q>, Error>;

    /// Executes batch `batch` (which must be the next unexecuted
    /// batch — the schedule is sequential) and accumulates its counts
    /// into the state.
    fn step(&self, state: &mut Self::State<'_>, batch: u32) -> BatchStats;

    /// The running estimates: per-node reach counts normalized by the
    /// trials executed so far.
    fn snapshot(&self, state: &Self::State<'_>) -> Scores;

    /// The running estimate of one node — what
    /// [`snapshot`](Estimator::snapshot) would report for it, without
    /// materializing the full score vector. The adaptive stopping
    /// rule polls only the answer set after every batch, so this is
    /// its per-batch accessor.
    fn estimate(&self, state: &Self::State<'_>, node: biorank_graph::NodeId) -> f64;

    /// The running estimates of a node set, written into a reusable
    /// buffer (cleared first). This is the adaptive stopping rule's
    /// per-batch accessor: it polls the answer set after every 64-trial
    /// batch, and going through a caller-owned buffer keeps the hot
    /// certification loop allocation-free.
    fn estimates_into(
        &self,
        state: &Self::State<'_>,
        nodes: &[biorank_graph::NodeId],
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.extend(nodes.iter().map(|&n| self.estimate(state, n)));
    }

    /// Consumes the state into final scores. Equal to the last
    /// [`snapshot`](Estimator::snapshot) — normalized by the trials
    /// actually executed, which is what makes early-stopped runs
    /// well-formed estimates.
    fn finish(&self, state: Self::State<'_>) -> Scores;

    /// Number of batches a full run executes.
    fn num_batches(&self) -> u32 {
        self.trials().div_ceil(BATCH_TRIALS)
    }

    /// The default driver: a complete fixed-trial run through the
    /// incremental protocol.
    fn drive(&self, q: &QueryGraph) -> Result<Scores, Error> {
        let mut state = self.begin(q)?;
        for b in 0..self.num_batches() {
            self.step(&mut state, b);
        }
        Ok(self.finish(state))
    }
}

/// Runs `units` independent count-producing work units on up to
/// `threads` scoped OS threads and merges their `Vec<u64>` outputs by
/// element-wise addition into a vector of length `len`.
///
/// Units are handed out in waves of `threads`; addition is associative
/// and commutative, so the wave layout (and therefore the thread
/// count) is invisible in the output — the determinism burden stays
/// entirely on the per-unit RNG streams the caller encodes in
/// `worker`. This is the one copy of the scheduling that
/// `TraversalMc::score_chunked` and `WordMc::score_parallel` used to
/// duplicate.
pub(crate) fn merge_unit_counts<W>(units: usize, threads: usize, len: usize, worker: W) -> Vec<u64>
where
    W: Fn(usize) -> Vec<u64> + Sync,
{
    let mut total = vec![0u64; len];
    if units == 0 {
        return total;
    }
    let threads = threads.clamp(1, units);
    if threads == 1 {
        // Sequential fast path: no thread spawns for single-threaded
        // callers (merging is order-invariant, so this is bit-identical
        // to the fan-out below).
        for i in 0..units {
            for (t, p) in total.iter_mut().zip(worker(i)) {
                *t += p;
            }
        }
        return total;
    }
    let worker = &worker;
    std::thread::scope(|scope| {
        for wave in (0..units).step_by(threads) {
            let handles: Vec<_> = (wave..(wave + threads).min(units))
                .map(|i| scope.spawn(move || worker(i)))
                .collect();
            for h in handles {
                let partial = h.join().expect("MC worker panicked");
                for (t, p) in total.iter_mut().zip(partial) {
                    *t += p;
                }
            }
        }
    });
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NaiveMc, Ranker, ReducedMc, TraversalMc, WordMc};
    use biorank_graph::generate::{self, WorkflowParams};
    use biorank_graph::NodeId;

    fn workflow() -> QueryGraph {
        generate::layered_workflow(&WorkflowParams::default(), 31)
    }

    fn assert_bit_identical(a: &Scores, b: &Scores, ctx: &str) {
        let (a, b) = (a.as_slice(), b.as_slice());
        assert_eq!(a.len(), b.len(), "{ctx}: length mismatch");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: node {i}");
        }
    }

    #[test]
    fn driving_batches_equals_one_shot_score() {
        // The load-bearing determinism contract: the incremental
        // protocol is bit-identical to the engines' one-shot entry
        // points, including a trial count not divisible by the batch
        // width.
        let q = workflow();
        for trials in [64u32, 1_000, 1_030] {
            let trav = TraversalMc::new(trials, 5);
            assert_bit_identical(
                &trav.drive(&q).unwrap(),
                &trav.score(&q).unwrap(),
                "traversal",
            );
            let word = WordMc::new(trials, 5);
            assert_bit_identical(&word.drive(&q).unwrap(), &word.score(&q).unwrap(), "word");
            let naive = NaiveMc::new(trials, 5);
            assert_bit_identical(
                &naive.drive(&q).unwrap(),
                &naive.score(&q).unwrap(),
                "naive",
            );
            let reduced = ReducedMc::new(trials, 5);
            assert_bit_identical(
                &reduced.drive(&q).unwrap(),
                &reduced.score(&q).unwrap(),
                "reduced",
            );
        }
    }

    #[test]
    fn snapshot_normalizes_by_executed_trials() {
        let q = workflow();
        let mc = TraversalMc::new(1_000, 9);
        let mut state = mc.begin(&q).unwrap();
        let stats = mc.step(&mut state, 0);
        assert_eq!(
            stats,
            BatchStats {
                batch: 0,
                trials: 64,
                total_trials: 64
            }
        );
        // After one batch the snapshot equals a fixed 64-trial run.
        let snap = mc.snapshot(&state);
        let fixed = TraversalMc::new(64, 9).score(&q).unwrap();
        assert_bit_identical(&snap, &fixed, "64-trial prefix");
        // The source is certain in workflow graphs, so its estimate is
        // exactly 1 at any trial count — proof of the normalization.
        assert_eq!(snap.get(q.source()), 1.0);
    }

    #[test]
    fn partial_final_batch_is_reported() {
        let q = workflow();
        let mc = WordMc::new(100, 2);
        assert_eq!(mc.num_batches(), 2);
        let mut state = mc.begin(&q).unwrap();
        assert_eq!(mc.step(&mut state, 0).trials, 64);
        let last = mc.step(&mut state, 1);
        assert_eq!(last.trials, 36);
        assert_eq!(last.total_trials, 100);
    }

    #[test]
    fn zero_trials_fails_at_begin() {
        let q = workflow();
        assert!(matches!(
            TraversalMc::new(0, 1).begin(&q),
            Err(Error::ZeroTrials)
        ));
        assert!(matches!(
            WordMc::new(0, 1).begin(&q),
            Err(Error::ZeroTrials)
        ));
        assert!(matches!(
            NaiveMc::new(0, 1).begin(&q),
            Err(Error::ZeroTrials)
        ));
    }

    #[test]
    fn merge_unit_counts_is_thread_count_invariant() {
        let worker = |i: usize| vec![i as u64; 4];
        let one = merge_unit_counts(7, 1, 4, worker);
        for threads in [2usize, 3, 7, 16] {
            assert_eq!(one, merge_unit_counts(7, threads, 4, worker));
        }
        assert_eq!(one, vec![21, 21, 21, 21]);
        assert_eq!(merge_unit_counts(0, 4, 3, worker), vec![0, 0, 0]);
    }

    #[test]
    fn reduced_estimator_scores_answers_like_ranker() {
        // ReducedMc's incremental state runs over the *reduced* graph;
        // protected answer ids stay stable, so answer scores agree
        // with the Ranker entry point bit for bit.
        let q = workflow();
        let reduced = ReducedMc::new(500, 77);
        let via_trait = reduced.drive(&q).unwrap();
        let via_ranker = reduced.score(&q).unwrap();
        for &a in q.answers() {
            assert_eq!(via_trait.get(a).to_bits(), via_ranker.get(a).to_bits());
        }
        let _ = NodeId::from_index(0); // keep the import honest
    }
}
