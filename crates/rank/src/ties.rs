//! Rankings with tie intervals.
//!
//! "Scoring functions sometimes lead to ties between functions and,
//! therefore, only partial orderings in the result list" (§4). Tables 2
//! and 3 of the paper report ranks as intervals like `34-97`; this module
//! produces exactly that representation from a score vector.

use std::fmt;

use biorank_graph::NodeId;

/// Relative tolerance used to group floating-point scores into ties.
///
/// Deterministic methods (InEdge, PathCount) produce exactly equal
/// scores; Monte Carlo estimates of genuinely tied reliabilities differ
/// by sampling noise, so exact comparison is still the right default —
/// callers can pass an epsilon to [`rank_with_epsilon`] when they want
/// noise-tolerant grouping.
pub const DEFAULT_EPSILON: f64 = 0.0;

/// One ranked answer: its score and the rank interval of its tie group.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RankedEntry {
    /// The answer node.
    pub node: NodeId,
    /// Its relevance score.
    pub score: f64,
    /// First rank of the tie group (1-based, inclusive).
    pub rank_lo: usize,
    /// Last rank of the tie group (1-based, inclusive).
    pub rank_hi: usize,
}

impl RankedEntry {
    /// `true` when this entry is tied with at least one other.
    pub fn is_tied(&self) -> bool {
        self.rank_lo != self.rank_hi
    }
}

impl fmt::Display for RankedEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_tied() {
            write!(f, "{}-{}", self.rank_lo, self.rank_hi)
        } else {
            write!(f, "{}", self.rank_lo)
        }
    }
}

/// A complete ranking of an answer set, descending by score.
#[derive(Clone, Debug, Default)]
pub struct Ranking {
    entries: Vec<RankedEntry>,
}

impl Ranking {
    /// Ranks `(node, score)` pairs descending by score with exact tie
    /// grouping.
    pub fn rank(scored: Vec<(NodeId, f64)>) -> Ranking {
        Self::rank_with_epsilon(scored, DEFAULT_EPSILON)
    }

    /// Ranks with an absolute tolerance: consecutive scores within
    /// `epsilon` of the group leader are tied.
    pub fn rank_with_epsilon(mut scored: Vec<(NodeId, f64)>, epsilon: f64) -> Ranking {
        // Descending score; ties broken by node id for determinism of
        // iteration order (the rank interval still reflects the tie).
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        let mut entries = Vec::with_capacity(scored.len());
        let mut i = 0;
        while i < scored.len() {
            let leader = scored[i].1;
            let mut j = i + 1;
            while j < scored.len() && (leader - scored[j].1).abs() <= epsilon {
                j += 1;
            }
            for &(node, score) in &scored[i..j] {
                entries.push(RankedEntry {
                    node,
                    score,
                    rank_lo: i + 1,
                    rank_hi: j,
                });
            }
            i = j;
        }
        Ranking { entries }
    }

    /// Entries in rank order (best first).
    pub fn entries(&self) -> &[RankedEntry] {
        &self.entries
    }

    /// Number of ranked answers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no answers were ranked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The rank interval of a given node, if present.
    pub fn rank_of(&self, node: NodeId) -> Option<&RankedEntry> {
        self.entries.iter().find(|e| e.node == node)
    }

    /// The relevance labels (1 = relevant) in rank order for a predicate,
    /// used to feed average-precision computations.
    pub fn relevance_vector(&self, is_relevant: impl Fn(NodeId) -> bool) -> Vec<bool> {
        self.entries.iter().map(|e| is_relevant(e.node)).collect()
    }

    /// Tie-group sizes in rank order, paired with the number of relevant
    /// answers in each group — the exact inputs the tie-aware average
    /// precision of McSherry & Najork needs.
    pub fn tie_groups(&self, is_relevant: impl Fn(NodeId) -> bool) -> Vec<TieGroup> {
        let mut groups: Vec<TieGroup> = Vec::new();
        for e in &self.entries {
            match groups.last_mut() {
                Some(g) if g.rank_lo == e.rank_lo => {
                    g.size += 1;
                    if is_relevant(e.node) {
                        g.relevant += 1;
                    }
                }
                _ => groups.push(TieGroup {
                    rank_lo: e.rank_lo,
                    size: 1,
                    relevant: usize::from(is_relevant(e.node)),
                }),
            }
        }
        groups
    }
}

/// A maximal run of tied answers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TieGroup {
    /// First rank of the group (1-based).
    pub rank_lo: usize,
    /// Number of answers in the group.
    pub size: usize,
    /// Number of relevant answers in the group.
    pub relevant: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn distinct_scores_rank_strictly() {
        let r = Ranking::rank(vec![(n(0), 0.1), (n(1), 0.9), (n(2), 0.5)]);
        let ranks: Vec<(usize, usize)> =
            r.entries().iter().map(|e| (e.rank_lo, e.rank_hi)).collect();
        assert_eq!(ranks, vec![(1, 1), (2, 2), (3, 3)]);
        assert_eq!(r.entries()[0].node, n(1));
        assert_eq!(r.entries()[2].node, n(0));
    }

    #[test]
    fn exact_ties_share_an_interval() {
        let r = Ranking::rank(vec![
            (n(0), 0.5),
            (n(1), 0.5),
            (n(2), 0.9),
            (n(3), 0.5),
            (n(4), 0.1),
        ]);
        // node 2 alone at rank 1; nodes 0,1,3 tied at 2-4; node 4 at 5.
        assert_eq!(r.rank_of(n(2)).unwrap().rank_lo, 1);
        let e = r.rank_of(n(1)).unwrap();
        assert_eq!((e.rank_lo, e.rank_hi), (2, 4));
        assert!(e.is_tied());
        assert_eq!(e.to_string(), "2-4");
        assert_eq!(r.rank_of(n(4)).unwrap().rank_lo, 5);
    }

    #[test]
    fn epsilon_grouping_tolerates_noise() {
        let r =
            Ranking::rank_with_epsilon(vec![(n(0), 0.5000), (n(1), 0.5001), (n(2), 0.40)], 0.001);
        let e = r.rank_of(n(0)).unwrap();
        assert_eq!((e.rank_lo, e.rank_hi), (1, 2));
        assert_eq!(r.rank_of(n(2)).unwrap().rank_lo, 3);
    }

    #[test]
    fn all_tied_is_one_interval() {
        let r = Ranking::rank(vec![(n(0), 2.0), (n(1), 2.0), (n(2), 2.0)]);
        for e in r.entries() {
            assert_eq!((e.rank_lo, e.rank_hi), (1, 3));
        }
    }

    #[test]
    fn tie_groups_count_relevant() {
        let r = Ranking::rank(vec![
            (n(0), 0.9),
            (n(1), 0.5),
            (n(2), 0.5),
            (n(3), 0.5),
            (n(4), 0.2),
        ]);
        let groups = r.tie_groups(|x| x == n(2) || x == n(0));
        assert_eq!(
            groups,
            vec![
                TieGroup {
                    rank_lo: 1,
                    size: 1,
                    relevant: 1
                },
                TieGroup {
                    rank_lo: 2,
                    size: 3,
                    relevant: 1
                },
                TieGroup {
                    rank_lo: 5,
                    size: 1,
                    relevant: 0
                },
            ]
        );
    }

    #[test]
    fn relevance_vector_in_rank_order() {
        let r = Ranking::rank(vec![(n(0), 0.2), (n(1), 0.8)]);
        assert_eq!(r.relevance_vector(|x| x == n(0)), vec![false, true]);
    }

    #[test]
    fn empty_ranking() {
        let r = Ranking::rank(vec![]);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn nan_scores_do_not_panic() {
        // NaN compares Equal here; ranking remains total and stable.
        let r = Ranking::rank(vec![(n(0), f64::NAN), (n(1), 0.5)]);
        assert_eq!(r.len(), 2);
    }
}
