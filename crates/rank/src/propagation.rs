//! The propagation semantics (paper §3.2, Algorithm 3.2).
//!
//! Relevance "propagates" along edges from the query node, PageRank-style
//! but with noisy-or accumulation; the score of a node depends only on
//! its parents and ignores correlations between them:
//!
//! ```text
//! r(y) = (1 − ∏_{(x,y)∈E} (1 − r(x)·q(x,y))) · p(y),    r(s) = 1
//! ```
//!
//! On a tree rooted at the source, propagation equals reliability
//! (Proposition 3.1 — property-tested in `tests/prop_semantics.rs`); on
//! general graphs it over-counts shared evidence, so propagation scores
//! dominate reliability scores. On DAGs the fixpoint is reached after
//! `longest-path` synchronous rounds, which is why the paper notes the
//! iteration "actually reaches equilibrium already after the maximum
//! pathlength"; cyclic graphs "unfold the cycle into an infinite
//! sequence of independent paths" and must be truncated at a fixed
//! iteration count.

use biorank_graph::{topo, QueryGraph};

use crate::{Error, Ranker, Scores};

/// Algorithm 3.2: iterative relevance propagation.
#[derive(Clone, Copy, Debug)]
pub struct Propagation {
    /// Number of synchronous iterations. `None` = automatic: longest
    /// path length on DAGs (exact fixpoint), [`Propagation::DEFAULT_CYCLIC_ITERATIONS`]
    /// on cyclic graphs.
    pub iterations: Option<usize>,
}

impl Propagation {
    /// Iterations used on cyclic graphs in automatic mode.
    pub const DEFAULT_CYCLIC_ITERATIONS: usize = 100;

    /// Automatic iteration count (recommended).
    pub fn auto() -> Self {
        Propagation { iterations: None }
    }

    /// Fixed iteration count (the paper's Algorithm 3.2 signature).
    pub fn with_iterations(n: usize) -> Self {
        Propagation {
            iterations: Some(n),
        }
    }

    fn resolve_iterations(&self, q: &QueryGraph) -> usize {
        match self.iterations {
            Some(n) => n,
            None => topo::longest_path_from(q.graph(), q.source())
                .map(|l| l.max(1))
                .unwrap_or(Self::DEFAULT_CYCLIC_ITERATIONS),
        }
    }
}

impl Default for Propagation {
    fn default() -> Self {
        Self::auto()
    }
}

impl Ranker for Propagation {
    fn name(&self) -> &'static str {
        "Prop"
    }

    fn score(&self, q: &QueryGraph) -> Result<Scores, Error> {
        let g = q.graph();
        let s = q.source();
        let bound = g.node_bound();
        let iterations = self.resolve_iterations(q);

        let mut r = vec![0.0f64; bound];
        r[s.index()] = 1.0;
        let mut next = r.clone();
        for _ in 0..iterations {
            for y in g.nodes() {
                if y == s {
                    continue;
                }
                let mut fail_all = 1.0f64;
                for e in g.in_edges(y) {
                    let x = g.edge_src(e);
                    fail_all *= 1.0 - r[x.index()] * g.edge_q(e).get();
                }
                next[y.index()] = (1.0 - fail_all) * g.node_p(y).get();
            }
            // Synchronous update: r* computed wholly from the previous r.
            std::mem::swap(&mut r, &mut next);
        }
        Ok(Scores::from_vec(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biorank_graph::{NodeId, Prob, ProbGraph};

    fn p(v: f64) -> Prob {
        Prob::new(v).unwrap()
    }

    /// Fig. 4a: s →(0.5) m, then two parallel certain 2-hop paths to u.
    fn fig4a() -> (QueryGraph, NodeId) {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let m = g.add_node(p(1.0));
        let a = g.add_node(p(1.0));
        let b = g.add_node(p(1.0));
        let u = g.add_node(p(1.0));
        g.add_edge(s, m, p(0.5)).unwrap();
        g.add_edge(m, a, p(1.0)).unwrap();
        g.add_edge(m, b, p(1.0)).unwrap();
        g.add_edge(a, u, p(1.0)).unwrap();
        g.add_edge(b, u, p(1.0)).unwrap();
        (QueryGraph::new(g, s, vec![u]).unwrap(), u)
    }

    #[test]
    fn fig4a_propagation_is_0_75() {
        // The paper's Fig. 4a reports propagation r = 0.75 where
        // reliability is 0.5: the two paths share the 0.5 edge but are
        // treated as independent.
        let (q, u) = fig4a();
        let r = Propagation::auto().score(&q).unwrap().get(u);
        assert!((r - 0.75).abs() < 1e-12, "r = {r}");
    }

    #[test]
    fn source_score_is_one() {
        let (q, _) = fig4a();
        let s = Propagation::auto().score(&q).unwrap();
        assert_eq!(s.get(q.source()), 1.0);
    }

    #[test]
    fn chain_multiplies() {
        // s →.8 x(.5) →.6 t(.9): prop(t) = (0.8·0.5·0.6)·0.9... step by
        // step: r(x) = 0.8·0.5 = 0.4; r(t) = 0.4·0.6·0.9 = 0.216.
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let x = g.add_node(p(0.5));
        let t = g.add_node(p(0.9));
        g.add_edge(s, x, p(0.8)).unwrap();
        g.add_edge(x, t, p(0.6)).unwrap();
        let q = QueryGraph::new(g, s, vec![t]).unwrap();
        let r = Propagation::auto().score(&q).unwrap().get(t);
        assert!((r - 0.216).abs() < 1e-12, "r = {r}");
    }

    #[test]
    fn too_few_iterations_underestimate() {
        let (q, u) = fig4a();
        // Path length to u is 3; a single iteration cannot reach it.
        let r1 = Propagation::with_iterations(1).score(&q).unwrap().get(u);
        assert_eq!(r1, 0.0);
        let r3 = Propagation::with_iterations(3).score(&q).unwrap().get(u);
        assert!((r3 - 0.75).abs() < 1e-12);
    }

    #[test]
    fn extra_iterations_are_stable_on_dags() {
        let (q, u) = fig4a();
        let r3 = Propagation::with_iterations(3).score(&q).unwrap().get(u);
        let r50 = Propagation::with_iterations(50).score(&q).unwrap().get(u);
        assert_eq!(r3, r50);
    }

    #[test]
    fn cycles_inflate_scores() {
        // s → a ⇄ b → t: each iteration pumps more relevance around the
        // loop; the paper calls this out as the propagation pathology.
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let a = g.add_node(p(1.0));
        let b = g.add_node(p(1.0));
        let t = g.add_node(p(1.0));
        g.add_edge(s, a, p(0.5)).unwrap();
        g.add_edge(a, b, p(0.9)).unwrap();
        g.add_edge(b, a, p(0.9)).unwrap();
        g.add_edge(b, t, p(0.5)).unwrap();
        let q = QueryGraph::new(g, s, vec![t]).unwrap();
        let few = Propagation::with_iterations(4).score(&q).unwrap().get(t);
        let many = Propagation::with_iterations(200).score(&q).unwrap().get(t);
        assert!(many > few, "cycle should inflate: {few} vs {many}");
        // Exact reliability is below the inflated propagation score.
        let truth = biorank_graph::exact::enumerate(q.graph(), q.source(), t).unwrap();
        assert!(many > truth);
    }

    #[test]
    fn auto_mode_handles_cycles() {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let a = g.add_node(p(1.0));
        g.add_edge(s, a, p(0.5)).unwrap();
        let b = g.add_node(p(1.0));
        g.add_edge(a, b, p(0.5)).unwrap();
        g.add_edge(b, a, p(0.5)).unwrap();
        let q = QueryGraph::new(g, s, vec![b]).unwrap();
        // Must not loop forever or error.
        let r = Propagation::auto().score(&q).unwrap();
        assert!(r.get(b) > 0.0);
    }
}
