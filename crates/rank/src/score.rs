//! Relevance scores and the `Ranker` abstraction.
//!
//! A relevance function (paper Definition 2.4) maps every node of a
//! probabilistic query graph to a score; the induced partial order on
//! the answer set is the ranking shown to the user. All five semantics
//! of §3 implement [`Ranker`].

use biorank_graph::{NodeId, QueryGraph};

use crate::Error;

/// A dense per-node score vector produced by a ranking method.
#[derive(Clone, Debug, PartialEq)]
pub struct Scores {
    by_node: Vec<f64>,
}

impl Scores {
    /// Creates a zeroed score vector able to index every node of `g`.
    pub fn zeroed(bound: usize) -> Self {
        Scores {
            by_node: vec![0.0; bound],
        }
    }

    /// Wraps an existing vector (must be sized to the graph's
    /// [`biorank_graph::ProbGraph::node_bound`]).
    pub fn from_vec(by_node: Vec<f64>) -> Self {
        Scores { by_node }
    }

    /// Score of node `n` (0.0 for never-scored nodes).
    pub fn get(&self, n: NodeId) -> f64 {
        self.by_node.get(n.index()).copied().unwrap_or(0.0)
    }

    /// Sets the score of node `n`.
    pub fn set(&mut self, n: NodeId, score: f64) {
        self.by_node[n.index()] = score;
    }

    /// The raw per-node vector.
    pub fn as_slice(&self) -> &[f64] {
        &self.by_node
    }

    /// Scores of the answer set, in answer order.
    pub fn answers(&self, q: &QueryGraph) -> Vec<(NodeId, f64)> {
        q.answers().iter().map(|&a| (a, self.get(a))).collect()
    }
}

/// A ranking semantics over probabilistic query graphs.
pub trait Ranker {
    /// Short method name as used in the paper's figures
    /// (`"Rel"`, `"Prop"`, `"Diff"`, `"InEdge"`, `"PathC"`).
    fn name(&self) -> &'static str;

    /// Computes relevance scores for all nodes of the query graph.
    fn score(&self, q: &QueryGraph) -> Result<Scores, Error>;
}

impl<R: Ranker + ?Sized> Ranker for &R {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn score(&self, q: &QueryGraph) -> Result<Scores, Error> {
        (**self).score(q)
    }
}

impl Ranker for Box<dyn Ranker + Send + Sync> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn score(&self, q: &QueryGraph) -> Result<Scores, Error> {
        (**self).score(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biorank_graph::{Prob, ProbGraph};

    #[test]
    fn scores_get_set_roundtrip() {
        let mut s = Scores::zeroed(4);
        let n = NodeId::from_index(2);
        assert_eq!(s.get(n), 0.0);
        s.set(n, 0.5);
        assert_eq!(s.get(n), 0.5);
        assert_eq!(s.as_slice(), &[0.0, 0.0, 0.5, 0.0]);
    }

    #[test]
    fn out_of_bounds_get_is_zero() {
        let s = Scores::zeroed(1);
        assert_eq!(s.get(NodeId::from_index(9)), 0.0);
    }

    #[test]
    fn answers_projects_in_order() {
        let mut g = ProbGraph::new();
        let s = g.add_node(Prob::ONE);
        let a = g.add_node(Prob::ONE);
        let b = g.add_node(Prob::ONE);
        g.add_edge(s, a, Prob::HALF).unwrap();
        g.add_edge(s, b, Prob::HALF).unwrap();
        let q = QueryGraph::new(g, s, vec![b, a]).unwrap();
        let mut sc = Scores::zeroed(3);
        sc.set(a, 0.1);
        sc.set(b, 0.9);
        assert_eq!(sc.answers(&q), vec![(b, 0.9), (a, 0.1)]);
    }
}
