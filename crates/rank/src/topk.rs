//! Adaptive top-k reliability evaluation.
//!
//! Exploratory-search users read the top of the ranking (paper §2:
//! "without ranking, users get flooded with irrelevant answers"), so
//! full-precision scores for the tail are wasted work. [`TopK`] runs the
//! traversal Monte Carlo in batches and stops as soon as Theorem 3.1
//! certifies, at confidence `1 − δ`, that the current top `k` answers
//! are separated from the rest: the observed gap between the k-th and
//! (k+1)-th estimate is plugged into the trial bound
//! `n(ε, δ) = (1+ε)³/(ε²(1+ε/3))·ln(1/δ)` and the run ends once the
//! accumulated trials exceed it.
//!
//! This is the natural marriage of the paper's trial bound with the
//! top-k query evaluation its related-work section cites (Ré, Dalvi,
//! Suciu, ICDE 2007).
//!
//! This evaluator is the CLI's interactive `biorank topk` frontend: it
//! checks the boundary gap only, batches 500 trials at a time, and
//! seeds each batch additively. The serving layer's cache-coherent
//! path is [`AdaptiveRunner::with_top_k`](crate::AdaptiveRunner) —
//! the same boundary idea plus intra-prefix gaps, driven over the
//! incremental 64-trial [`Estimator`](crate::Estimator) schedule so a
//! stopped run stays bit-identical to a fixed run of `trials_used`
//! trials and its [`Certificate`](crate::Certificate) can tag cached
//! results.

use biorank_graph::{NodeId, QueryGraph};

use crate::{bounds, mc, Error};

/// Adaptive top-k reliability evaluator.
#[derive(Clone, Copy, Debug)]
pub struct TopK {
    /// How many leading answers must be certified.
    pub k: usize,
    /// Allowed probability of mis-ranking the boundary pair.
    pub delta: f64,
    /// Trials per batch.
    pub batch: u32,
    /// Hard trial ceiling (ties at the boundary may never separate).
    pub max_trials: u32,
    /// RNG seed.
    pub seed: u64,
}

impl TopK {
    /// A reasonable default configuration for `k` answers at 95%
    /// confidence.
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            delta: 0.05,
            batch: 500,
            max_trials: 200_000,
            seed: 0x707_0105,
        }
    }
}

/// Result of an adaptive top-k run.
#[derive(Clone, Debug)]
pub struct TopKResult {
    /// The top-k answers with their reliability estimates, descending.
    pub top: Vec<(NodeId, f64)>,
    /// Estimated score of the best excluded answer (`None` when k covers
    /// the whole answer set).
    pub runner_up: Option<f64>,
    /// Monte Carlo trials actually spent.
    pub trials_used: u32,
    /// `true` when the Theorem 3.1 certificate was reached; `false`
    /// when the run stopped at `max_trials` with the boundary still
    /// ambiguous.
    pub certified: bool,
}

impl TopK {
    /// Runs the adaptive evaluation.
    pub fn run(&self, q: &QueryGraph) -> Result<TopKResult, Error> {
        if self.batch == 0 || self.max_trials == 0 {
            return Err(Error::ZeroTrials);
        }
        if !(self.delta > 0.0 && self.delta < 1.0) {
            return Err(Error::InvalidParameter {
                name: "delta",
                value: self.delta,
            });
        }
        let answers = q.answers();
        let nb = q.graph().node_bound();
        let mut counts = vec![0u64; nb];
        let mut trials: u32 = 0;
        let mut batch_index = 0u64;
        let mut certified = false;

        loop {
            let this_batch = self.batch.min(self.max_trials - trials);
            let partial = mc::run_trials(q, this_batch, self.seed.wrapping_add(batch_index));
            for (acc, p) in counts.iter_mut().zip(partial) {
                *acc += p;
            }
            trials += this_batch;
            batch_index += 1;

            if self.k >= answers.len() {
                // Nothing to separate: the whole answer set is the top.
                certified = true;
                break;
            }
            let mut est: Vec<(NodeId, f64)> = answers
                .iter()
                .map(|&a| (a, counts[a.index()] as f64 / f64::from(trials)))
                .collect();
            est.sort_by(|x, y| y.1.partial_cmp(&x.1).unwrap_or(std::cmp::Ordering::Equal));
            let gap = est[self.k - 1].1 - est[self.k].1;
            if bounds::resolves(gap, self.delta, u64::from(trials)) {
                certified = true;
                break;
            }
            if trials >= self.max_trials {
                break;
            }
        }

        let mut est: Vec<(NodeId, f64)> = answers
            .iter()
            .map(|&a| (a, counts[a.index()] as f64 / f64::from(trials)))
            .collect();
        est.sort_by(|x, y| y.1.partial_cmp(&x.1).unwrap_or(std::cmp::Ordering::Equal));
        let runner_up = est.get(self.k).map(|&(_, s)| s);
        est.truncate(self.k);
        Ok(TopKResult {
            top: est,
            runner_up,
            trials_used: trials,
            certified,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biorank_graph::{Prob, ProbGraph};

    fn p(v: f64) -> Prob {
        Prob::new(v).unwrap()
    }

    /// Star with well-separated chain strengths.
    fn separated_star() -> (QueryGraph, Vec<NodeId>) {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let mut answers = Vec::new();
        for (i, q_val) in [0.9, 0.7, 0.5, 0.3, 0.1].iter().enumerate() {
            let t = g.add_labeled_node(p(1.0), format!("t{i}"));
            g.add_edge(s, t, p(*q_val)).unwrap();
            answers.push(t);
        }
        (QueryGraph::new(g, s, answers.clone()).unwrap(), answers)
    }

    #[test]
    fn certifies_quickly_on_separated_scores() {
        let (q, answers) = separated_star();
        let result = TopK {
            k: 2,
            delta: 0.05,
            batch: 500,
            max_trials: 100_000,
            seed: 3,
        }
        .run(&q)
        .unwrap();
        assert!(result.certified);
        // Gap 0.7 − 0.5 = 0.2 ⇒ bound ≈ 115 trials; one batch suffices.
        assert_eq!(result.trials_used, 500, "{result:?}");
        let top_ids: Vec<NodeId> = result.top.iter().map(|&(n, _)| n).collect();
        assert_eq!(top_ids, vec![answers[0], answers[1]]);
        assert!(result.runner_up.unwrap() < result.top[1].1);
    }

    #[test]
    fn exact_ties_run_to_the_ceiling_uncertified() {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let a = g.add_node(p(1.0));
        let b = g.add_node(p(1.0));
        g.add_edge(s, a, p(0.5)).unwrap();
        g.add_edge(s, b, p(0.5)).unwrap();
        let q = QueryGraph::new(g, s, vec![a, b]).unwrap();
        let result = TopK {
            k: 1,
            delta: 0.05,
            batch: 1_000,
            max_trials: 5_000,
            seed: 1,
        }
        .run(&q)
        .unwrap();
        assert!(!result.certified, "a true tie cannot be certified");
        assert_eq!(result.trials_used, 5_000);
    }

    #[test]
    fn k_covering_all_answers_is_trivially_certified() {
        let (q, _) = separated_star();
        let result = TopK {
            k: 5,
            delta: 0.05,
            batch: 100,
            max_trials: 10_000,
            seed: 2,
        }
        .run(&q)
        .unwrap();
        assert!(result.certified);
        assert_eq!(result.trials_used, 100);
        assert_eq!(result.top.len(), 5);
        assert!(result.runner_up.is_none());
    }

    #[test]
    fn estimates_match_truth() {
        let (q, answers) = separated_star();
        let result = TopK {
            k: 3,
            delta: 0.01,
            batch: 5_000,
            max_trials: 200_000,
            seed: 9,
        }
        .run(&q)
        .unwrap();
        let expect = [0.9, 0.7, 0.5];
        for (i, &(n, score)) in result.top.iter().enumerate() {
            assert_eq!(n, answers[i]);
            assert!((score - expect[i]).abs() < 0.02, "answer {i}: {score}");
        }
    }

    #[test]
    fn invalid_parameters_rejected() {
        let (q, _) = separated_star();
        assert!(matches!(
            TopK {
                k: 1,
                delta: 0.05,
                batch: 0,
                max_trials: 10,
                seed: 0
            }
            .run(&q),
            Err(Error::ZeroTrials)
        ));
        assert!(matches!(
            TopK {
                k: 1,
                delta: 1.5,
                batch: 10,
                max_trials: 10,
                seed: 0
            }
            .run(&q),
            Err(Error::InvalidParameter { .. })
        ));
    }
}
