//! Word-parallel Monte Carlo reliability estimation.
//!
//! [`TraversalMc`](crate::TraversalMc) (Algorithm 3.1) walks the graph
//! once per trial, drawing one `f64` per element it touches. For the
//! trial counts the paper's Theorem 3.1 demands (10⁴ per query), that
//! is thousands of pointer-chasing DFS walks. [`WordMc`] runs **64
//! trials at once**: each node and edge gets a `u64` *inclusion mask*
//! whose bit `t` is an independent Bernoulli draw for trial `t`, and
//! reachability propagates through the whole batch with bitwise
//! AND/OR over a flat [`CsrGraph`] snapshot:
//!
//! ```text
//! reach[y] |= reach[x] & edge_mask[x→y] & node_mask[y]
//! ```
//!
//! The engine is **lane-generic**: `WordMc<W>` propagates `W` 64-trial
//! batches per sweep as a `[u64; W]` block, so the inner loop above
//! vectorizes and the per-sweep bookkeeping (topo walk, offsets,
//! target loads) amortizes over `64·W` trials. Lane `l` of block `k`
//! *is* global batch `k·W + l` of the 1-lane schedule — each lane
//! draws from the stream seeded by `(seed, batch)` — so every lane
//! width produces bit-identical scores and identical adaptive
//! certificates to `WordMc<1>`.
//!
//! On a DAG — every query graph the paper's mediator produces — one
//! pass in topological order is exact; cyclic graphs fall back to a
//! bounded monotone fixpoint sweep, which converges because reach
//! masks only ever gain bits. Masks and reach words live in a
//! topologically streamed layout ([`CsrGraph::topo_layout`]) so the
//! sweep reads node state, edge masks, and targets as forward streams
//! rather than striding dense-id order. Per-node popcounts accumulate
//! the reach counters, so 10 000 trials collapse into 157 linear
//! sweeps (20 blocks at `W = 8`).
//!
//! Masks are drawn by a bit-sliced fixed-point comparison
//! ([`bernoulli_word`]): 64 uniform draws compare against `p` in
//! parallel, consuming one `u64` of randomness per *bit of precision
//! still undecided* — about 7 words per element per batch in
//! expectation instead of 64, which is where most of the speed-up over
//! per-trial sampling comes from. Elements with `p ≥ 1` or `p ≤ 0`
//! are excluded from the draw schedule entirely (their masks are
//! constant), exactly matching the 1-lane engine's no-consumption
//! early returns.
//!
//! All mask, reach, and popcount buffers come from a thread-local
//! arena and are leased for the lifetime of a run: zero heap
//! allocations after the first batch, and none at all once a thread
//! has warmed the pool.
//!
//! **Determinism contract:** batch `b` draws from its own RNG stream
//! seeded by a SplitMix64 mix of `(seed, b)`, and batch counts merge
//! by addition. The estimate therefore depends only on
//! `(trials, seed)` — never on the thread count or lane width — so
//! [`WordMc::score_parallel`] is bit-identical for every `threads`
//! and `W` value, and results stay coherent across a result cache.

use std::sync::Arc;

use biorank_graph::csr::CsrGraph;
use biorank_graph::QueryGraph;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use crate::estimator::{merge_unit_counts, BatchStats, Estimator, BATCH_TRIALS};
use crate::{Error, Ranker, Scores};

/// Trials per batch: one bit of a machine word each (the incremental
/// [`Estimator`] contract's batch width — this engine is why 64 is
/// everyone's batch size).
const BATCH: u32 = BATCH_TRIALS;

/// Word-parallel Monte Carlo: `W` 64-trial lanes per propagation pass.
///
/// `WordMc` (no parameter) is the 1-lane engine; `WordMc::<8>::wide`
/// builds the block engine the service and benches run. Every width
/// is bit-identical — see the module docs.
#[derive(Clone, Copy, Debug)]
pub struct WordMc<const W: usize = 1> {
    /// Number of independent trials (`n` in the paper).
    pub trials: u32,
    /// RNG seed; equal seeds give equal estimates.
    pub seed: u64,
}

impl WordMc {
    /// Creates a 1-lane word-parallel sampler with the given trial
    /// count and seed.
    pub fn new(trials: u32, seed: u64) -> Self {
        WordMc { trials, seed }
    }
}

impl<const W: usize> WordMc<W> {
    /// Creates a `W`-lane word-parallel sampler. Bit-identical to the
    /// 1-lane [`WordMc::new`] engine at every width; wider lanes only
    /// trade memory for propagation throughput.
    pub fn wide(trials: u32, seed: u64) -> Self {
        const { assert!(W >= 1, "lane width must be at least 1") };
        WordMc { trials, seed }
    }

    /// Runs the trial blocks split across up to `threads` scoped OS
    /// threads.
    ///
    /// Unlike [`TraversalMc::score_chunked`](crate::TraversalMc), no
    /// chunk layout needs pinning: every 64-trial batch owns an
    /// independent RNG stream and batch counts merge by `u64`
    /// addition, so **any** split produces bit-identical scores. The
    /// thread count is purely a latency knob.
    pub fn score_parallel(&self, q: &QueryGraph, threads: usize) -> Result<Scores, Error> {
        if self.trials == 0 {
            return Err(Error::ZeroTrials);
        }
        let csr = q.csr();
        let source = csr
            .dense(q.source())
            .expect("query source is live by construction");
        let plan = WidePlan::new(Arc::clone(&csr), source);
        let blocks = self.trials.div_ceil(BATCH).div_ceil(W as u32);
        let threads = threads.clamp(1, blocks as usize);
        // Contiguous block ranges, one per thread; the shared fan-out
        // driver runs them and merges by addition. Any partition is
        // bit-identical because every batch owns its own RNG stream.
        let base = blocks / threads as u32;
        let extra = blocks % threads as u32;
        let ranges: Vec<std::ops::Range<u32>> = (0..threads as u32)
            .scan(0u32, |start, i| {
                let share = base + u32::from(i < extra);
                let range = *start..*start + share;
                *start += share;
                Some(range)
            })
            .collect();
        let counts = merge_unit_counts(ranges.len(), threads, csr.node_count(), |i| {
            let mut partial = vec![0u64; csr.node_count()];
            let mut scratch = WideScratch::<W>::for_plan(&plan);
            run_blocks(
                &plan,
                ranges[i].clone(),
                self.trials,
                self.seed,
                &mut scratch,
                &mut partial,
            );
            partial
        });
        Ok(project(&csr, &counts, self.trials, q.graph().node_bound()))
    }
}

/// Maps dense CSR reach counts back onto original node ids as scores.
pub(crate) fn project(csr: &CsrGraph, counts: &[u64], trials: u32, node_bound: usize) -> Scores {
    let n = f64::from(trials.max(1));
    let mut scores = Scores::zeroed(node_bound);
    for (i, &c) in counts.iter().enumerate() {
        scores.set(csr.original(i as u32), c as f64 / n);
    }
    scores
}

/// Thread-local buffer pool backing [`WideScratch`].
///
/// Runs lease their mask/reach/popcount buffers here and return them
/// on drop, so repeated queries on a warm thread never touch the
/// allocator: the service's fusion sweeps and the adaptive runner both
/// churn through engines at query rate.
mod arena {
    use std::cell::RefCell;

    thread_local! {
        static POOL: RefCell<Vec<Vec<u64>>> = const { RefCell::new(Vec::new()) };
    }

    /// A zeroed buffer of `len` words, recycled when possible.
    pub(super) fn lease(len: usize) -> Vec<u64> {
        let mut v = POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
        v.clear();
        v.resize(len, 0);
        v
    }

    /// Returns a leased buffer to the pool.
    pub(super) fn reclaim(v: Vec<u64>) {
        POOL.with(|p| p.borrow_mut().push(v));
    }
}

/// Precomputed drawing + propagation plan for one CSR snapshot.
///
/// Element masks live in the topologically streamed layout
/// ([`CsrGraph::topo_layout`]): node slots are sweep positions, edge
/// slots are grouped by source position. The draw schedule lists only
/// elements with `0 < p < 1` — in the pinned order (nodes in dense
/// order, then edges in CSR order) that defines the RNG contract —
/// with their fixed-point thresholds precomputed; certain-present
/// elements are prefilled `!0` once per scratch and certain-absent
/// ones stay zero.
pub(crate) struct WidePlan {
    pub(crate) csr: Arc<CsrGraph>,
    /// Node count: node mask slots are `0..n`, edge slots `n..n + e`.
    pub(crate) n: usize,
    /// Edge count.
    pub(crate) e: usize,
    /// Sweep position of the query source node.
    source_pos: usize,
    /// `(mask slot, ⌊p·2³²⌋)` per uncertain element, pinned draw order.
    draws: Vec<(u32, u64)>,
    /// Mask slots of certain-present elements (`p ≥ 1`).
    certain: Vec<u32>,
}

impl WidePlan {
    pub(crate) fn new(csr: Arc<CsrGraph>, source_dense: u32) -> WidePlan {
        let layout = csr.topo_layout();
        let n = csr.node_count();
        let e = csr.edge_count();
        let mut draws = Vec::new();
        let mut certain = Vec::new();
        let mut classify = |slot: u32, p: f64| {
            if p >= 1.0 {
                certain.push(slot);
            } else if p > 0.0 {
                // ⌊p·2³²⌋ < 2³² since p < 1.
                draws.push((slot, (p * 4_294_967_296.0) as u64));
            }
        };
        for (d, &p) in csr.node_probs().iter().enumerate() {
            classify(layout.position(d as u32), p);
        }
        let slot_of_edge = layout.slot_of_edge();
        for (k, &q) in csr.edge_probs().iter().enumerate() {
            classify(n as u32 + slot_of_edge[k], q);
        }
        let source_pos = layout.position(source_dense) as usize;
        WidePlan {
            csr,
            n,
            e,
            source_pos,
            draws,
            certain,
        }
    }
}

/// Per-run working buffers for a `W`-lane engine, leased from the
/// thread-local arena. Lane `l` of mask slot `s` is word `s·W + l`,
/// so a propagation step reads each block as one contiguous
/// `[u64; W]`.
pub(crate) struct WideScratch<const W: usize> {
    /// Element inclusion masks: `(n + e)·W` words, certain slots
    /// prefilled.
    masks: Vec<u64>,
    /// Reach masks per sweep position: `n·W` words.
    reach: Vec<u64>,
    /// Per-position per-lane popcounts of the last propagated block:
    /// `n·W` words, overwritten per block.
    block_counts: Vec<u64>,
}

impl<const W: usize> WideScratch<W> {
    pub(crate) fn for_plan(plan: &WidePlan) -> WideScratch<W> {
        let mut masks = arena::lease((plan.n + plan.e) * W);
        for &slot in &plan.certain {
            let base = slot as usize * W;
            masks[base..base + W].fill(!0);
        }
        WideScratch {
            masks,
            reach: arena::lease(plan.n * W),
            block_counts: arena::lease(plan.n * W),
        }
    }
}

impl<const W: usize> Drop for WideScratch<W> {
    fn drop(&mut self) {
        arena::reclaim(std::mem::take(&mut self.masks));
        arena::reclaim(std::mem::take(&mut self.reach));
        arena::reclaim(std::mem::take(&mut self.block_counts));
    }
}

/// Draws lane `lane`'s element masks from the RNG stream `stream_seed`
/// (i.e. [`batch_seed`] of the lane's global batch index).
///
/// The draw order and per-element word consumption are exactly the
/// 1-lane engine's, so the lane reproduces that batch bit for bit.
pub(crate) fn draw_lane<const W: usize>(
    plan: &WidePlan,
    scratch: &mut WideScratch<W>,
    lane: usize,
    stream_seed: u64,
) {
    let mut rng = StdRng::seed_from_u64(stream_seed);
    for &(slot, pfx) in &plan.draws {
        scratch.masks[slot as usize * W + lane] = bernoulli_word_pfx(&mut rng, pfx);
    }
}

/// Propagates one `W`-lane block of reach masks and banks per-lane
/// popcounts into the scratch.
///
/// `valid[l]` gates lane `l` at the source: `!0` for a full batch, a
/// low-bit prefix for the schedule's partial final batch, `0` for an
/// idle lane (its stale masks are harmless — reach only flows from
/// the source, so a zeroed source lane is zero everywhere).
pub(crate) fn propagate_block<const W: usize>(
    plan: &WidePlan,
    scratch: &mut WideScratch<W>,
    valid: &[u64; W],
) {
    let layout = plan.csr.topo_layout();
    let n = plan.n;
    let WideScratch {
        masks,
        reach,
        block_counts,
    } = scratch;
    reach.fill(0);
    let sp = plan.source_pos;
    for l in 0..W {
        reach[sp * W + l] = masks[sp * W + l] & valid[l];
    }
    let ltargets = layout.targets();
    if plan.csr.is_dag() {
        // DAG fast path: sweep positions are topological order, so
        // every predecessor block is final before its node is visited
        // and one forward pass is exact.
        for pos in 0..n {
            let mut rx = [0u64; W];
            rx.copy_from_slice(&reach[pos * W..pos * W + W]);
            if rx.iter().all(|&x| x == 0) {
                continue;
            }
            for slot in layout.out_range(pos as u32) {
                let y = ltargets[slot] as usize * W;
                let em = (n + slot) * W;
                for l in 0..W {
                    reach[y + l] |= rx[l] & masks[em + l] & masks[y + l];
                }
            }
        }
    } else {
        // Cyclic fallback: monotone fixpoint. Each sweep advances
        // every frontier by at least one hop, so `n` sweeps always
        // suffice; the loop usually exits far earlier. The fixpoint is
        // unique, so sweep count never changes the resulting bits.
        for _ in 0..n {
            let mut changed = false;
            for pos in 0..n {
                let mut rx = [0u64; W];
                rx.copy_from_slice(&reach[pos * W..pos * W + W]);
                if rx.iter().all(|&x| x == 0) {
                    continue;
                }
                for slot in layout.out_range(pos as u32) {
                    let y = ltargets[slot] as usize * W;
                    let em = (n + slot) * W;
                    for l in 0..W {
                        let add = rx[l] & masks[em + l] & masks[y + l];
                        if add & !reach[y + l] != 0 {
                            reach[y + l] |= add;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }
    for (bc, r) in block_counts.iter_mut().zip(reach.iter()) {
        *bc = u64::from(r.count_ones());
    }
}

/// Adds lane `lane`'s banked popcounts into `counts` (dense indexing).
pub(crate) fn fold_lane<const W: usize>(
    plan: &WidePlan,
    scratch: &WideScratch<W>,
    lane: usize,
    counts: &mut [u64],
) {
    let dense_of_pos = plan.csr.topo_layout().dense_of_pos();
    for (pos, &d) in dense_of_pos.iter().enumerate() {
        counts[d as usize] += scratch.block_counts[pos * W + lane];
    }
}

/// The source-gating mask of batch `batch` under a total budget of
/// `trials`: all-ones except for the schedule's partial final batch.
pub(crate) fn batch_valid(batch: u32, trials: u32) -> u64 {
    let last = trials.div_ceil(BATCH) - 1;
    match trials % BATCH {
        rem if rem != 0 && batch == last => !0u64 >> (BATCH - rem),
        _ => !0u64,
    }
}

/// Runs blocks `blocks` of the `(trials, seed)` schedule, adding
/// per-node reach popcounts into `counts` (dense indexing).
fn run_blocks<const W: usize>(
    plan: &WidePlan,
    blocks: std::ops::Range<u32>,
    trials: u32,
    seed: u64,
    scratch: &mut WideScratch<W>,
    counts: &mut [u64],
) {
    let num_batches = trials.div_ceil(BATCH);
    for blk in blocks {
        let first = blk * W as u32;
        let active = (W as u32).min(num_batches - first) as usize;
        let mut valid = [0u64; W];
        for (l, v) in valid.iter_mut().enumerate().take(active) {
            let b = first + l as u32;
            draw_lane(plan, scratch, l, batch_seed(seed, b));
            *v = batch_valid(b, trials);
        }
        propagate_block(plan, scratch, &valid);
        for lane in 0..active {
            fold_lane(plan, scratch, lane, counts);
        }
    }
}

/// In-progress state of an incremental [`WordMc`] run.
pub struct WordState<const W: usize = 1> {
    plan: WidePlan,
    counts: Vec<u64>,
    scratch: WideScratch<W>,
    node_bound: usize,
    trials_done: u32,
    trials_total: u32,
}

impl<const W: usize> Estimator for WordMc<W> {
    type State<'q> = WordState<W>;

    fn trials(&self) -> u32 {
        self.trials
    }

    fn begin<'q>(&self, q: &'q QueryGraph) -> Result<WordState<W>, Error> {
        if self.trials == 0 {
            return Err(Error::ZeroTrials);
        }
        let csr = q.csr();
        let source = csr
            .dense(q.source())
            .expect("query source is live by construction");
        let plan = WidePlan::new(csr, source);
        let counts = vec![0u64; plan.n];
        let scratch = WideScratch::for_plan(&plan);
        Ok(WordState {
            plan,
            counts,
            scratch,
            node_bound: q.graph().node_bound(),
            trials_done: 0,
            trials_total: self.trials,
        })
    }

    fn step(&self, state: &mut WordState<W>, batch: u32) -> BatchStats {
        debug_assert_eq!(batch * BATCH, state.trials_done, "batches in order");
        let WordState {
            plan,
            counts,
            scratch,
            ..
        } = state;
        let lane = batch as usize % W;
        if lane == 0 {
            // Block boundary: draw and propagate the next W batches in
            // one sweep. Later steps of the block only fold their
            // lane's banked popcounts, so per-step trial accounting —
            // and any adaptive stop point — is identical to W = 1; a
            // mid-block stop merely wastes the propagated tail lanes.
            let num_batches = state.trials_total.div_ceil(BATCH);
            let active = W.min((num_batches - batch) as usize);
            let mut valid = [0u64; W];
            for (l, v) in valid.iter_mut().enumerate().take(active) {
                let b = batch + l as u32;
                draw_lane(plan, scratch, l, batch_seed(self.seed, b));
                *v = batch_valid(b, state.trials_total);
            }
            propagate_block(plan, scratch, &valid);
        }
        fold_lane(plan, scratch, lane, counts);
        let trials = BATCH.min(state.trials_total - state.trials_done);
        state.trials_done += trials;
        BatchStats {
            batch,
            trials,
            total_trials: state.trials_done,
        }
    }

    fn snapshot(&self, state: &WordState<W>) -> Scores {
        project(
            &state.plan.csr,
            &state.counts,
            state.trials_done,
            state.node_bound,
        )
    }

    fn estimate(&self, state: &WordState<W>, node: biorank_graph::NodeId) -> f64 {
        state
            .plan
            .csr
            .dense(node)
            .and_then(|d| state.counts.get(d as usize))
            .map(|&c| c as f64 / f64::from(state.trials_done.max(1)))
            .unwrap_or(0.0)
    }

    fn finish(&self, state: WordState<W>) -> Scores {
        self.snapshot(&state)
    }
}

impl<const W: usize> Ranker for WordMc<W> {
    fn name(&self) -> &'static str {
        "Rel(wordMC)"
    }

    fn score(&self, q: &QueryGraph) -> Result<Scores, Error> {
        self.score_parallel(q, 1)
    }
}

/// Draws a 64-bit word whose bits are independent Bernoulli(`p`)
/// samples.
///
/// Equivalent to comparing 64 independent 32-bit uniforms against
/// `⌊p·2³²⌋`, evaluated bit-sliced from the most significant bit down:
/// a comparison is decided at the first bit position where the uniform
/// differs from `p`, so each round halves the undecided set and the
/// loop consumes ~`log₂ 64 + 2` random words in expectation (hard cap
/// 32). The 2⁻³² quantization of `p` is orders of magnitude below
/// Monte Carlo noise at any feasible trial count.
#[inline]
#[cfg_attr(not(test), allow(dead_code))]
fn bernoulli_word(rng: &mut StdRng, p: f64) -> u64 {
    if p >= 1.0 {
        return !0;
    }
    if p <= 0.0 {
        return 0;
    }
    bernoulli_word_pfx(rng, (p * 4_294_967_296.0) as u64)
}

/// [`bernoulli_word`] with the fixed-point threshold `⌊p·2³²⌋`
/// precomputed and `0 < p < 1` guaranteed by the caller's draw plan.
///
/// Branch-free inner loop: the mask `m` selects between the two
/// decision rules (`m = !0` where the threshold bit is 1), replacing a
/// per-round unpredictable branch. Word consumption and output are
/// bit-for-bit those of the branchy form.
#[inline]
fn bernoulli_word_pfx(rng: &mut StdRng, pfx: u64) -> u64 {
    let mut decided_true = 0u64;
    let mut undecided = !0u64;
    let mut bit = 32u32;
    while undecided != 0 && bit > 0 {
        bit -= 1;
        let r = rng.next_u64();
        // threshold bit 1: uniform bit 0 decides "< p"; undecided keeps r.
        // threshold bit 0: uniform bit 1 decides "≥ p"; undecided keeps !r.
        let m = 0u64.wrapping_sub((pfx >> bit) & 1);
        decided_true |= undecided & !r & m;
        undecided &= r ^ !m;
    }
    // Bits still undecided after 32 rounds equal the fixed-point prefix
    // exactly: uniform == ⌊p·2³²⌋ means "not less than p".
    decided_true
}

/// The RNG stream seed of batch `b` under run seed `seed`.
///
/// A SplitMix64-style finalizer over the pair rather than the additive
/// `seed + b`: with 157 batches per 10⁴-trial run, additive seeding
/// would make runs with nearby seeds share almost all of their streams
/// (run seed `s` batch `b` ≡ run seed `s+1` batch `b−1`), silently
/// correlating what callers reasonably treat as independent
/// replications. Mixing keeps the determinism contract — the stream
/// depends only on `(seed, b)` — while making stream collisions
/// hash-unlikely instead of systematic.
#[inline]
pub(crate) fn batch_seed(seed: u64, b: u32) -> u64 {
    let mut z = seed ^ u64::from(b).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use biorank_graph::{exact, generate, NodeId, Prob, ProbGraph};

    use crate::TraversalMc;

    fn p(v: f64) -> Prob {
        Prob::new(v).unwrap()
    }

    fn diamond() -> (QueryGraph, NodeId) {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let a = g.add_node(p(1.0));
        let b = g.add_node(p(1.0));
        let t = g.add_node(p(1.0));
        g.add_edge(s, a, p(0.5)).unwrap();
        g.add_edge(s, b, p(0.5)).unwrap();
        g.add_edge(a, t, p(0.5)).unwrap();
        g.add_edge(b, t, p(0.5)).unwrap();
        (QueryGraph::new(g, s, vec![t]).unwrap(), t)
    }

    #[test]
    fn zero_trials_is_an_error() {
        let (q, _) = diamond();
        assert!(matches!(
            WordMc::new(0, 1).score(&q),
            Err(Error::ZeroTrials)
        ));
    }

    #[test]
    fn converges_to_exact_diamond() {
        let (q, t) = diamond();
        // exact: 1 − (1 − 0.25)² = 0.4375
        let est = WordMc::new(40_000, 42).score(&q).unwrap().get(t);
        assert!((est - 0.4375).abs() < 0.01, "estimate {est}");
    }

    #[test]
    fn source_score_equals_source_presence() {
        let (q, _) = diamond();
        let s = WordMc::new(5_000, 7).score(&q).unwrap();
        assert_eq!(s.get(q.source()), 1.0);
    }

    #[test]
    fn node_failures_respected() {
        // s → m(p=0.5) → t: r(t) = 0.5
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let m = g.add_node(p(0.5));
        let t = g.add_node(p(1.0));
        g.add_edge(s, m, p(1.0)).unwrap();
        g.add_edge(m, t, p(1.0)).unwrap();
        let q = QueryGraph::new(g, s, vec![t]).unwrap();
        let est = WordMc::new(40_000, 3).score(&q).unwrap().get(t);
        assert!((est - 0.5).abs() < 0.01, "estimate {est}");
    }

    #[test]
    fn partial_last_batch_counts_only_valid_trials() {
        // trials not divisible by 64 must still normalize correctly; a
        // certain s → t chain must score exactly 1.0, which fails if
        // the padding bits of the last batch leak into the counters.
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let t = g.add_node(p(1.0));
        g.add_edge(s, t, p(1.0)).unwrap();
        let q = QueryGraph::new(g, s, vec![t]).unwrap();
        for trials in [1u32, 63, 65, 1000] {
            let est = WordMc::new(trials, 5).score(&q).unwrap().get(t);
            assert_eq!(est, 1.0, "trials {trials}");
            let wide = WordMc::<8>::wide(trials, 5).score(&q).unwrap().get(t);
            assert_eq!(wide, 1.0, "trials {trials} (8-lane)");
        }
    }

    #[test]
    fn agrees_with_enumeration_on_workflows() {
        let params = generate::WorkflowParams {
            layers: 2,
            width: 3,
            answers: 2,
            density: 0.5,
            node_prob: (0.4, 1.0),
            edge_prob: (0.4, 1.0),
        };
        for seed in 0..3u64 {
            let q = generate::layered_workflow(&params, seed);
            let word = WordMc::new(60_000, 11).score(&q).unwrap();
            for &a in q.answers() {
                let truth = match exact::enumerate(q.graph(), q.source(), a) {
                    Ok(r) => r,
                    Err(_) => exact::factoring(q.graph(), q.source(), a, None).unwrap(),
                };
                let est = word.get(a);
                assert!((est - truth).abs() < 0.015, "word {est} vs {truth}");
            }
        }
    }

    #[test]
    fn matches_traversal_mc_statistically() {
        let q = generate::layered_workflow(&generate::WorkflowParams::default(), 17);
        let word = WordMc::new(30_000, 1).score(&q).unwrap();
        let trav = TraversalMc::new(30_000, 2).score(&q).unwrap();
        for &a in q.answers() {
            let d = (word.get(a) - trav.get(a)).abs();
            assert!(
                d < 0.02,
                "answer {a}: word {} vs traversal {}",
                word.get(a),
                trav.get(a)
            );
        }
    }

    #[test]
    fn thread_count_never_changes_bits() {
        // Exact bit-identity across thread counts for a fixed
        // (trials, seed) — including a trial count that is not a
        // multiple of the batch width.
        let q = generate::layered_workflow(&generate::WorkflowParams::default(), 23);
        let mc = WordMc::new(1_000, 9);
        let sequential = mc.score_parallel(&q, 1).unwrap();
        for threads in [2usize, 3, 8, 16, 64] {
            let parallel = mc.score_parallel(&q, threads).unwrap();
            for n in 0..q.graph().node_bound() {
                let node = NodeId::from_index(n);
                assert_eq!(
                    sequential.get(node).to_bits(),
                    parallel.get(node).to_bits(),
                    "threads={threads} node={n}"
                );
            }
        }
    }

    #[test]
    fn lane_width_never_changes_bits() {
        // The tentpole's contract: every lane width (and every thread
        // count at every width) reproduces the 1-lane engine exactly.
        let q = generate::layered_workflow(&generate::WorkflowParams::default(), 23);
        for trials in [64u32, 1_000, 1_001] {
            let narrow = WordMc::new(trials, 9).score_parallel(&q, 1).unwrap();
            let w4 = WordMc::<4>::wide(trials, 9).score_parallel(&q, 1).unwrap();
            let w8 = WordMc::<8>::wide(trials, 9).score_parallel(&q, 3).unwrap();
            assert_eq!(narrow.as_slice(), w4.as_slice(), "W=4 trials={trials}");
            assert_eq!(narrow.as_slice(), w8.as_slice(), "W=8 trials={trials}");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (q, _) = diamond();
        let a = WordMc::new(1_000, 5).score(&q).unwrap();
        let b = WordMc::new(1_000, 5).score(&q).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
        let c = WordMc::new(1_000, 6).score(&q).unwrap();
        assert_ne!(
            a.as_slice(),
            c.as_slice(),
            "different seeds should (almost surely) differ"
        );
    }

    #[test]
    fn nearby_seeds_give_independent_estimates() {
        // Additive batch seeding would make runs at seed s and s+1
        // share all but one of their 64-trial batch streams; with the
        // mixed schedule the estimates must scatter like independent
        // replications (spread ≫ one batch's worth of samples).
        let (q, t) = diamond();
        let trials = 10_000u32;
        let ests: Vec<f64> = (0..8u64)
            .map(|s| WordMc::new(trials, s).score(&q).unwrap().get(t))
            .collect();
        let mean = ests.iter().sum::<f64>() / ests.len() as f64;
        let spread = ests.iter().map(|e| (e - mean).abs()).fold(0.0f64, f64::max);
        // One shared-batch difference could move the estimate by at
        // most 64/trials = 0.0064; binomial σ here is ~0.005, so 8
        // independent runs almost surely spread wider than that.
        assert!(
            spread > f64::from(BATCH) / f64::from(trials) * 0.5,
            "estimates {ests:?} too tightly clustered — correlated streams?"
        );
    }

    #[test]
    fn handles_cyclic_graphs_via_fixpoint() {
        // s → a ⇄ b → t exercises the non-DAG sweep.
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let a = g.add_node(p(1.0));
        let b = g.add_node(p(1.0));
        let t = g.add_node(p(1.0));
        g.add_edge(s, a, p(0.8)).unwrap();
        g.add_edge(a, b, p(0.8)).unwrap();
        g.add_edge(b, a, p(0.8)).unwrap();
        g.add_edge(b, t, p(0.8)).unwrap();
        let q = QueryGraph::new(g, s, vec![t]).unwrap();
        let est = WordMc::new(40_000, 4).score(&q).unwrap().get(t);
        let truth = exact::enumerate(q.graph(), q.source(), t).unwrap();
        assert!((est - truth).abs() < 0.01, "{est} vs {truth}");
        // And the wide engine's cyclic sweep must agree bit for bit.
        let narrow = WordMc::new(2_000, 4).score(&q).unwrap();
        let wide = WordMc::<8>::wide(2_000, 4).score(&q).unwrap();
        assert_eq!(narrow.as_slice(), wide.as_slice());
    }

    #[test]
    fn bernoulli_word_frequencies_match_p() {
        let mut rng = StdRng::seed_from_u64(99);
        for &prob in &[0.0, 1.0, 0.5, 0.25, 1.0 / 3.0, 0.9] {
            let mut ones = 0u64;
            let words = 4_000;
            for _ in 0..words {
                ones += u64::from(bernoulli_word(&mut rng, prob).count_ones());
            }
            let freq = ones as f64 / (words * 64) as f64;
            let sigma = (prob * (1.0 - prob) / (words * 64) as f64).sqrt();
            assert!(
                (freq - prob).abs() <= 4.0 * sigma + 1e-12,
                "p={prob}: frequency {freq}"
            );
        }
    }

    #[test]
    fn bernoulli_word_bits_are_independent_across_trials() {
        // Adjacent-bit correlation would break the independence of
        // trials within a batch; check lag-1 correlation is small.
        let mut rng = StdRng::seed_from_u64(7);
        let mut both = 0u64;
        let mut total = 0u64;
        for _ in 0..4_000 {
            let w = bernoulli_word(&mut rng, 0.5);
            both += u64::from((w & (w >> 1)).count_ones());
            total += 63;
        }
        let pair_freq = both as f64 / total as f64;
        assert!(
            (pair_freq - 0.25).abs() < 0.01,
            "lag-1 pair frequency {pair_freq}"
        );
    }
}
