//! Word-parallel Monte Carlo reliability estimation.
//!
//! [`TraversalMc`](crate::TraversalMc) (Algorithm 3.1) walks the graph
//! once per trial, drawing one `f64` per element it touches. For the
//! trial counts the paper's Theorem 3.1 demands (10⁴ per query), that
//! is thousands of pointer-chasing DFS walks. [`WordMc`] runs **64
//! trials at once**: each node and edge gets a `u64` *inclusion mask*
//! whose bit `t` is an independent Bernoulli draw for trial `t`, and
//! reachability propagates through the whole batch with bitwise
//! AND/OR over a flat [`CsrGraph`] snapshot:
//!
//! ```text
//! reach[y] |= reach[x] & edge_mask[x→y] & node_mask[y]
//! ```
//!
//! On a DAG — every query graph the paper's mediator produces — one
//! pass in topological order is exact; cyclic graphs fall back to a
//! bounded monotone fixpoint sweep, which converges because reach
//! masks only ever gain bits. Per-node popcounts accumulate the reach
//! counters, so 10 000 trials collapse into 157 linear sweeps.
//!
//! Masks are drawn by a bit-sliced fixed-point comparison
//! ([`bernoulli_word`]): 64 uniform draws compare against `p` in
//! parallel, consuming one `u64` of randomness per *bit of precision
//! still undecided* — about 7 words per element per batch in
//! expectation instead of 64, which is where most of the speed-up over
//! per-trial sampling comes from.
//!
//! **Determinism contract:** batch `b` draws from its own RNG stream
//! seeded by a SplitMix64 mix of `(seed, b)`, and batch counts merge
//! by addition. The estimate therefore depends only on
//! `(trials, seed)` — never on the thread count — so
//! [`WordMc::score_parallel`] is bit-identical for every `threads`
//! value, and results stay coherent across a result cache.

use biorank_graph::csr::CsrGraph;
use biorank_graph::QueryGraph;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use crate::estimator::{merge_unit_counts, BatchStats, Estimator, BATCH_TRIALS};
use crate::{Error, Ranker, Scores};

/// Trials per batch: one bit of a machine word each (the incremental
/// [`Estimator`] contract's batch width — this engine is why 64 is
/// everyone's batch size).
const BATCH: u32 = BATCH_TRIALS;

/// Word-parallel Monte Carlo: 64 trials per bitmask propagation pass.
#[derive(Clone, Copy, Debug)]
pub struct WordMc {
    /// Number of independent trials (`n` in the paper).
    pub trials: u32,
    /// RNG seed; equal seeds give equal estimates.
    pub seed: u64,
}

impl WordMc {
    /// Creates a word-parallel sampler with the given trial count and
    /// seed.
    pub fn new(trials: u32, seed: u64) -> Self {
        WordMc { trials, seed }
    }

    /// Runs the trial batches split across up to `threads` scoped OS
    /// threads.
    ///
    /// Unlike [`TraversalMc::score_chunked`](crate::TraversalMc), no
    /// chunk layout needs pinning: every 64-trial batch owns an
    /// independent RNG stream and batch counts merge by `u64`
    /// addition, so **any** split produces bit-identical scores. The
    /// thread count is purely a latency knob.
    pub fn score_parallel(&self, q: &QueryGraph, threads: usize) -> Result<Scores, Error> {
        if self.trials == 0 {
            return Err(Error::ZeroTrials);
        }
        let csr = CsrGraph::from_graph(q.graph());
        let source = csr
            .dense(q.source())
            .expect("query source is live by construction");
        let batches = self.trials.div_ceil(BATCH);
        let threads = threads.clamp(1, batches as usize);
        // Contiguous batch ranges, one per thread; the shared fan-out
        // driver runs them and merges by addition. Any partition is
        // bit-identical because every batch owns its own RNG stream.
        let base = batches / threads as u32;
        let extra = batches % threads as u32;
        let ranges: Vec<std::ops::Range<u32>> = (0..threads as u32)
            .scan(0u32, |start, i| {
                let share = base + u32::from(i < extra);
                let range = *start..*start + share;
                *start += share;
                Some(range)
            })
            .collect();
        let counts = merge_unit_counts(ranges.len(), threads, csr.node_count(), |i| {
            let mut partial = vec![0u64; csr.node_count()];
            let mut scratch = WordScratch::for_csr(&csr);
            run_batches(
                &csr,
                source,
                ranges[i].clone(),
                self.trials,
                self.seed,
                &mut scratch,
                &mut partial,
            );
            partial
        });
        Ok(project(&csr, &counts, self.trials, q.graph().node_bound()))
    }
}

/// Maps dense CSR reach counts back onto original node ids as scores.
fn project(csr: &CsrGraph, counts: &[u64], trials: u32, node_bound: usize) -> Scores {
    let n = f64::from(trials.max(1));
    let mut scores = Scores::zeroed(node_bound);
    for (i, &c) in counts.iter().enumerate() {
        scores.set(csr.original(i as u32), c as f64 / n);
    }
    scores
}

/// Reusable per-run mask/reach buffers: allocated once per run (or
/// per fan-out worker), overwritten every batch.
struct WordScratch {
    node_mask: Vec<u64>,
    edge_mask: Vec<u64>,
    reach: Vec<u64>,
}

impl WordScratch {
    fn for_csr(csr: &CsrGraph) -> WordScratch {
        WordScratch {
            node_mask: vec![0; csr.node_count()],
            edge_mask: vec![0; csr.edge_count()],
            reach: vec![0; csr.node_count()],
        }
    }
}

/// In-progress state of an incremental [`WordMc`] run.
pub struct WordState {
    csr: CsrGraph,
    source: u32,
    counts: Vec<u64>,
    scratch: WordScratch,
    node_bound: usize,
    trials_done: u32,
    trials_total: u32,
}

impl Estimator for WordMc {
    type State<'q> = WordState;

    fn trials(&self) -> u32 {
        self.trials
    }

    fn begin<'q>(&self, q: &'q QueryGraph) -> Result<WordState, Error> {
        if self.trials == 0 {
            return Err(Error::ZeroTrials);
        }
        let csr = CsrGraph::from_graph(q.graph());
        let source = csr
            .dense(q.source())
            .expect("query source is live by construction");
        let counts = vec![0u64; csr.node_count()];
        let scratch = WordScratch::for_csr(&csr);
        Ok(WordState {
            csr,
            source,
            counts,
            scratch,
            node_bound: q.graph().node_bound(),
            trials_done: 0,
            trials_total: self.trials,
        })
    }

    fn step(&self, state: &mut WordState, batch: u32) -> BatchStats {
        debug_assert_eq!(batch * BATCH, state.trials_done, "batches in order");
        // The mask schedule (including the partial-final-batch mask) is
        // a function of the *total* trial budget, so a run stopped
        // early matches the prefix of the fixed run bit for bit.
        run_batches(
            &state.csr,
            state.source,
            batch..batch + 1,
            state.trials_total,
            self.seed,
            &mut state.scratch,
            &mut state.counts,
        );
        let trials = BATCH.min(state.trials_total - state.trials_done);
        state.trials_done += trials;
        BatchStats {
            batch,
            trials,
            total_trials: state.trials_done,
        }
    }

    fn snapshot(&self, state: &WordState) -> Scores {
        project(
            &state.csr,
            &state.counts,
            state.trials_done,
            state.node_bound,
        )
    }

    fn estimate(&self, state: &WordState, node: biorank_graph::NodeId) -> f64 {
        state
            .csr
            .dense(node)
            .and_then(|d| state.counts.get(d as usize))
            .map(|&c| c as f64 / f64::from(state.trials_done.max(1)))
            .unwrap_or(0.0)
    }

    fn finish(&self, state: WordState) -> Scores {
        self.snapshot(&state)
    }
}

impl Ranker for WordMc {
    fn name(&self) -> &'static str {
        "Rel(wordMC)"
    }

    fn score(&self, q: &QueryGraph) -> Result<Scores, Error> {
        self.score_parallel(q, 1)
    }
}

/// Draws a 64-bit word whose bits are independent Bernoulli(`p`)
/// samples.
///
/// Equivalent to comparing 64 independent 32-bit uniforms against
/// `⌊p·2³²⌋`, evaluated bit-sliced from the most significant bit down:
/// a comparison is decided at the first bit position where the uniform
/// differs from `p`, so each round halves the undecided set and the
/// loop consumes ~`log₂ 64 + 2` random words in expectation (hard cap
/// 32). The 2⁻³² quantization of `p` is orders of magnitude below
/// Monte Carlo noise at any feasible trial count.
#[inline]
fn bernoulli_word(rng: &mut StdRng, p: f64) -> u64 {
    if p >= 1.0 {
        return !0;
    }
    if p <= 0.0 {
        return 0;
    }
    let pfx = (p * 4_294_967_296.0) as u64; // ⌊p·2³²⌋ < 2³² since p < 1
    let mut decided_true = 0u64;
    let mut undecided = !0u64;
    let mut bit = 32u32;
    while undecided != 0 && bit > 0 {
        bit -= 1;
        let r = rng.next_u64();
        if (pfx >> bit) & 1 == 1 {
            // Uniform bit 0 under a p bit 1: uniform < p, decided set.
            decided_true |= undecided & !r;
            undecided &= r;
        } else {
            // Uniform bit 1 over a p bit 0: uniform > p, decided clear.
            undecided &= !r;
        }
    }
    // Bits still undecided after 32 rounds equal the fixed-point prefix
    // exactly: uniform == ⌊p·2³²⌋ means "not less than p".
    decided_true
}

/// The RNG stream seed of batch `b` under run seed `seed`.
///
/// A SplitMix64-style finalizer over the pair rather than the additive
/// `seed + b`: with 157 batches per 10⁴-trial run, additive seeding
/// would make runs with nearby seeds share almost all of their streams
/// (run seed `s` batch `b` ≡ run seed `s+1` batch `b−1`), silently
/// correlating what callers reasonably treat as independent
/// replications. Mixing keeps the determinism contract — the stream
/// depends only on `(seed, b)` — while making stream collisions
/// hash-unlikely instead of systematic.
#[inline]
fn batch_seed(seed: u64, b: u32) -> u64 {
    let mut z = seed ^ u64::from(b).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs batches `range` of the `(trials, seed)` schedule, adding
/// per-node reach popcounts into `counts` (dense indexing).
fn run_batches(
    csr: &CsrGraph,
    source: u32,
    range: std::ops::Range<u32>,
    trials: u32,
    seed: u64,
    scratch: &mut WordScratch,
    counts: &mut [u64],
) {
    let n = csr.node_count();
    let node_p = csr.node_probs();
    let edge_q = csr.edge_probs();
    let targets = csr.targets();
    let last_batch = trials.div_ceil(BATCH) - 1;
    let WordScratch {
        node_mask,
        edge_mask,
        reach,
    } = scratch;

    for b in range {
        let mut rng = StdRng::seed_from_u64(batch_seed(seed, b));
        // Masks are drawn in a pinned order (nodes in dense order, then
        // edges in CSR order) so the schedule depends only on the seed.
        for (mask, &p) in node_mask.iter_mut().zip(node_p) {
            *mask = bernoulli_word(&mut rng, p);
        }
        for (mask, &q) in edge_mask.iter_mut().zip(edge_q) {
            *mask = bernoulli_word(&mut rng, q);
        }
        // The last batch may cover fewer than 64 trials; masking the
        // source masks every downstream reach word, since reach bits
        // only ever propagate from the source.
        let valid = match trials % BATCH {
            rem if rem != 0 && b == last_batch => !0u64 >> (BATCH - rem),
            _ => !0u64,
        };
        reach.iter_mut().for_each(|r| *r = 0);
        reach[source as usize] = node_mask[source as usize] & valid;

        if let Some(order) = csr.topo_order() {
            // DAG fast path: every predecessor of a node is finalized
            // before the node is visited, so one pass is exact.
            for &x in order {
                let rx = reach[x as usize];
                if rx == 0 {
                    continue;
                }
                for k in csr.out_range(x) {
                    let y = targets[k] as usize;
                    reach[y] |= rx & edge_mask[k] & node_mask[y];
                }
            }
        } else {
            // Cyclic fallback: monotone fixpoint. Each sweep advances
            // every frontier by at least one hop, so `n` sweeps always
            // suffice; the loop usually exits far earlier.
            for _ in 0..n {
                let mut changed = false;
                for x in 0..n as u32 {
                    let rx = reach[x as usize];
                    if rx == 0 {
                        continue;
                    }
                    for k in csr.out_range(x) {
                        let y = targets[k] as usize;
                        let add = rx & edge_mask[k] & node_mask[y];
                        if add & !reach[y] != 0 {
                            reach[y] |= add;
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
        }

        for (c, r) in counts.iter_mut().zip(reach.iter()) {
            *c += u64::from(r.count_ones());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biorank_graph::{exact, generate, NodeId, Prob, ProbGraph};

    use crate::TraversalMc;

    fn p(v: f64) -> Prob {
        Prob::new(v).unwrap()
    }

    fn diamond() -> (QueryGraph, NodeId) {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let a = g.add_node(p(1.0));
        let b = g.add_node(p(1.0));
        let t = g.add_node(p(1.0));
        g.add_edge(s, a, p(0.5)).unwrap();
        g.add_edge(s, b, p(0.5)).unwrap();
        g.add_edge(a, t, p(0.5)).unwrap();
        g.add_edge(b, t, p(0.5)).unwrap();
        (QueryGraph::new(g, s, vec![t]).unwrap(), t)
    }

    #[test]
    fn zero_trials_is_an_error() {
        let (q, _) = diamond();
        assert!(matches!(
            WordMc::new(0, 1).score(&q),
            Err(Error::ZeroTrials)
        ));
    }

    #[test]
    fn converges_to_exact_diamond() {
        let (q, t) = diamond();
        // exact: 1 − (1 − 0.25)² = 0.4375
        let est = WordMc::new(40_000, 42).score(&q).unwrap().get(t);
        assert!((est - 0.4375).abs() < 0.01, "estimate {est}");
    }

    #[test]
    fn source_score_equals_source_presence() {
        let (q, _) = diamond();
        let s = WordMc::new(5_000, 7).score(&q).unwrap();
        assert_eq!(s.get(q.source()), 1.0);
    }

    #[test]
    fn node_failures_respected() {
        // s → m(p=0.5) → t: r(t) = 0.5
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let m = g.add_node(p(0.5));
        let t = g.add_node(p(1.0));
        g.add_edge(s, m, p(1.0)).unwrap();
        g.add_edge(m, t, p(1.0)).unwrap();
        let q = QueryGraph::new(g, s, vec![t]).unwrap();
        let est = WordMc::new(40_000, 3).score(&q).unwrap().get(t);
        assert!((est - 0.5).abs() < 0.01, "estimate {est}");
    }

    #[test]
    fn partial_last_batch_counts_only_valid_trials() {
        // trials not divisible by 64 must still normalize correctly; a
        // certain s → t chain must score exactly 1.0, which fails if
        // the padding bits of the last batch leak into the counters.
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let t = g.add_node(p(1.0));
        g.add_edge(s, t, p(1.0)).unwrap();
        let q = QueryGraph::new(g, s, vec![t]).unwrap();
        for trials in [1u32, 63, 65, 1000] {
            let est = WordMc::new(trials, 5).score(&q).unwrap().get(t);
            assert_eq!(est, 1.0, "trials {trials}");
        }
    }

    #[test]
    fn agrees_with_enumeration_on_workflows() {
        let params = generate::WorkflowParams {
            layers: 2,
            width: 3,
            answers: 2,
            density: 0.5,
            node_prob: (0.4, 1.0),
            edge_prob: (0.4, 1.0),
        };
        for seed in 0..3u64 {
            let q = generate::layered_workflow(&params, seed);
            let word = WordMc::new(60_000, 11).score(&q).unwrap();
            for &a in q.answers() {
                let truth = match exact::enumerate(q.graph(), q.source(), a) {
                    Ok(r) => r,
                    Err(_) => exact::factoring(q.graph(), q.source(), a, None).unwrap(),
                };
                let est = word.get(a);
                assert!((est - truth).abs() < 0.015, "word {est} vs {truth}");
            }
        }
    }

    #[test]
    fn matches_traversal_mc_statistically() {
        let q = generate::layered_workflow(&generate::WorkflowParams::default(), 17);
        let word = WordMc::new(30_000, 1).score(&q).unwrap();
        let trav = TraversalMc::new(30_000, 2).score(&q).unwrap();
        for &a in q.answers() {
            let d = (word.get(a) - trav.get(a)).abs();
            assert!(
                d < 0.02,
                "answer {a}: word {} vs traversal {}",
                word.get(a),
                trav.get(a)
            );
        }
    }

    #[test]
    fn thread_count_never_changes_bits() {
        // Exact bit-identity across thread counts for a fixed
        // (trials, seed) — including a trial count that is not a
        // multiple of the batch width.
        let q = generate::layered_workflow(&generate::WorkflowParams::default(), 23);
        let mc = WordMc::new(1_000, 9);
        let sequential = mc.score_parallel(&q, 1).unwrap();
        for threads in [2usize, 3, 8, 16, 64] {
            let parallel = mc.score_parallel(&q, threads).unwrap();
            for n in 0..q.graph().node_bound() {
                let node = NodeId::from_index(n);
                assert_eq!(
                    sequential.get(node).to_bits(),
                    parallel.get(node).to_bits(),
                    "threads={threads} node={n}"
                );
            }
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (q, _) = diamond();
        let a = WordMc::new(1_000, 5).score(&q).unwrap();
        let b = WordMc::new(1_000, 5).score(&q).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
        let c = WordMc::new(1_000, 6).score(&q).unwrap();
        assert_ne!(
            a.as_slice(),
            c.as_slice(),
            "different seeds should (almost surely) differ"
        );
    }

    #[test]
    fn nearby_seeds_give_independent_estimates() {
        // Additive batch seeding would make runs at seed s and s+1
        // share all but one of their 64-trial batch streams; with the
        // mixed schedule the estimates must scatter like independent
        // replications (spread ≫ one batch's worth of samples).
        let (q, t) = diamond();
        let trials = 10_000u32;
        let ests: Vec<f64> = (0..8u64)
            .map(|s| WordMc::new(trials, s).score(&q).unwrap().get(t))
            .collect();
        let mean = ests.iter().sum::<f64>() / ests.len() as f64;
        let spread = ests.iter().map(|e| (e - mean).abs()).fold(0.0f64, f64::max);
        // One shared-batch difference could move the estimate by at
        // most 64/trials = 0.0064; binomial σ here is ~0.005, so 8
        // independent runs almost surely spread wider than that.
        assert!(
            spread > f64::from(BATCH) / f64::from(trials) * 0.5,
            "estimates {ests:?} too tightly clustered — correlated streams?"
        );
    }

    #[test]
    fn handles_cyclic_graphs_via_fixpoint() {
        // s → a ⇄ b → t exercises the non-DAG sweep.
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let a = g.add_node(p(1.0));
        let b = g.add_node(p(1.0));
        let t = g.add_node(p(1.0));
        g.add_edge(s, a, p(0.8)).unwrap();
        g.add_edge(a, b, p(0.8)).unwrap();
        g.add_edge(b, a, p(0.8)).unwrap();
        g.add_edge(b, t, p(0.8)).unwrap();
        let q = QueryGraph::new(g, s, vec![t]).unwrap();
        let est = WordMc::new(40_000, 4).score(&q).unwrap().get(t);
        let truth = exact::enumerate(q.graph(), q.source(), t).unwrap();
        assert!((est - truth).abs() < 0.01, "{est} vs {truth}");
    }

    #[test]
    fn bernoulli_word_frequencies_match_p() {
        let mut rng = StdRng::seed_from_u64(99);
        for &prob in &[0.0, 1.0, 0.5, 0.25, 1.0 / 3.0, 0.9] {
            let mut ones = 0u64;
            let words = 4_000;
            for _ in 0..words {
                ones += u64::from(bernoulli_word(&mut rng, prob).count_ones());
            }
            let freq = ones as f64 / (words * 64) as f64;
            let sigma = (prob * (1.0 - prob) / (words * 64) as f64).sqrt();
            assert!(
                (freq - prob).abs() <= 4.0 * sigma + 1e-12,
                "p={prob}: frequency {freq}"
            );
        }
    }

    #[test]
    fn bernoulli_word_bits_are_independent_across_trials() {
        // Adjacent-bit correlation would break the independence of
        // trials within a batch; check lag-1 correlation is small.
        let mut rng = StdRng::seed_from_u64(7);
        let mut both = 0u64;
        let mut total = 0u64;
        for _ in 0..4_000 {
            let w = bernoulli_word(&mut rng, 0.5);
            both += u64::from((w & (w >> 1)).count_ones());
            total += 63;
        }
        let pair_freq = both as f64 / total as f64;
        assert!(
            (pair_freq - 0.25).abs() < 0.01,
            "lag-1 pair frequency {pair_freq}"
        );
    }
}
