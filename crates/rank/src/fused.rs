//! Multi-query fusion: many Monte Carlo runs through one sweep.
//!
//! Concurrent queries against the same resident [`QueryGraph`] all
//! propagate masks over the same CSR. Running them back to back repeats
//! the sweep bookkeeping (topo walk, offset/target loads, mask reads)
//! once per query; [`run_fused`] instead assigns each in-flight query a
//! group of lanes in a shared `W`-lane block, propagates all lanes in
//! one pass, and demultiplexes the per-lane popcounts back into each
//! query's own counters.
//!
//! **Bit-identity.** A job's lane `l` draws from the RNG stream of its
//! *own* `(seed, batch)` — exactly the stream the solo engine would use
//! — and its counts merge by addition in batch order, so a fused run
//! returns byte-identical scores to a solo [`WordMc`](crate::WordMc)
//! run of the same `(trials, seed)`. Adaptive jobs poll the
//! certification rule after every folded 64-trial batch, in batch
//! order, with the same predicate the solo
//! [`AdaptiveRunner`](crate::AdaptiveRunner) applies — identical stop
//! points, identical [`Certificate`]s. Fusion is therefore invisible
//! everywhere except wall-clock: no request fields, no cache-key
//! dimensions, no score drift.
//!
//! **Scheduling.** Blocks run in rounds. Before each round the
//! `source` callback may admit newly arrived jobs; lanes are then dealt
//! round-robin across active jobs (each lane is that job's next batch,
//! in order), the block propagates once, and each job folds its lanes,
//! polls certification (if adaptive), and finalizes through `sink` the
//! moment it certifies or exhausts its budget. A job stopping mid-block
//! wastes only the propagation of its remaining assigned lanes — never
//! a bit of its output.

use biorank_graph::QueryGraph;

use crate::adaptive::{checked_gaps_and_mode, sorted_gaps_certified, validate_params, Certificate};
use crate::estimator::BATCH_TRIALS;
use crate::word::{
    batch_seed, batch_valid, draw_lane, fold_lane, project, propagate_block, WidePlan, WideScratch,
};
use crate::{bounds, Error, Scores};

/// Stopping policy of one fused job.
#[derive(Clone, Copy, Debug)]
pub enum FusedPolicy {
    /// Run the full trial budget; no certificate.
    Fixed,
    /// Bound-certified early termination, identical to
    /// [`AdaptiveRunner`](crate::AdaptiveRunner) with the same
    /// parameters over a `WordMc` engine of the job's `(trials, seed)`.
    Adaptive {
        /// Smallest separation the caller needs ranked correctly.
        epsilon: f64,
        /// Allowed per-pair failure probability.
        delta: f64,
        /// Restrict certification to the top-k prefix (see
        /// [`AdaptiveRunner::with_top_k`](crate::AdaptiveRunner::with_top_k)).
        top_k: Option<usize>,
    },
}

/// One query's slice of a fused sweep.
#[derive(Clone, Copy, Debug)]
pub struct FusedJob {
    /// RNG seed of the job's trial schedule.
    pub seed: u64,
    /// Trial budget: the fixed count for [`FusedPolicy::Fixed`], the
    /// ceiling for [`FusedPolicy::Adaptive`].
    pub trials: u32,
    /// When (and whether) the job stops early.
    pub policy: FusedPolicy,
    /// Abort the job with [`Error::DeadlineExceeded`] once this instant
    /// passes. Polled after every folded batch, *after* the
    /// certification check — exactly mirroring
    /// [`AdaptiveRunner::with_deadline`](crate::AdaptiveRunner::with_deadline)
    /// — so a job that completes on time runs the same sample schedule
    /// as an undeadlined one, and an aborted job fails through the sink
    /// without disturbing its block-mates.
    pub deadline: Option<std::time::Instant>,
}

/// The finished result of one fused job.
#[derive(Clone, Debug)]
pub struct FusedOutcome {
    /// Final estimates, normalized by the trials actually used.
    pub scores: Scores,
    /// Stop certificate for adaptive jobs; `None` for fixed jobs.
    pub certificate: Option<Certificate>,
    /// Trials actually executed (equals the budget for fixed jobs).
    pub trials_used: u32,
    /// Wall-clock nanoseconds of sweep work attributed to this job
    /// (its share of each block's draw + propagate, plus its own
    /// demux). Observational only — never feeds back into the sample
    /// schedule.
    pub step_nanos: u64,
    /// Wall-clock nanoseconds spent in this job's certification polls.
    pub poll_nanos: u64,
}

/// Telemetry for one fused propagation block, handed to the `observe`
/// callback after every sweep.
#[derive(Clone, Copy, Debug)]
pub struct FusedBlockStats {
    /// Lanes that carried a batch this block (≤ `W`).
    pub lanes: u32,
    /// Distinct jobs sharing the block.
    pub jobs: u32,
}

/// Internal per-job progress inside a fused sweep.
struct JobRun {
    id: u64,
    seed: u64,
    trials_total: u32,
    num_batches: u32,
    batches_done: u32,
    trials_done: u32,
    /// Reach popcounts in dense CSR space, folded in batch order.
    counts: Vec<u64>,
    /// `None` for fixed jobs.
    adaptive: Option<AdaptiveRule>,
    deadline: Option<std::time::Instant>,
    certified: bool,
    done: bool,
    step_nanos: u64,
    poll_nanos: u64,
}

struct AdaptiveRule {
    epsilon: f64,
    delta: f64,
    checked_gaps: usize,
    mode: crate::CertificateMode,
}

/// Runs a set of Monte Carlo jobs over `q` as fused `W`-lane sweeps.
///
/// - `initial`: jobs present at the start, as `(caller id, job)`.
/// - `source`: polled before every block for newly arrived jobs; return
///   an empty vec when none. It stops being polled once the active set
///   drains, so callers gating admission (e.g. the service's fusion
///   queue) must treat jobs still queued at return as *not run*.
/// - `sink`: receives each job's result the moment it completes, in
///   completion order. A job with invalid parameters fails through the
///   sink without disturbing its block-mates.
/// - `observe`: per-block telemetry (lane occupancy, job sharing).
///
/// Returns the number of jobs completed (successfully or not).
pub fn run_fused<const W: usize>(
    q: &QueryGraph,
    initial: Vec<(u64, FusedJob)>,
    mut source: impl FnMut() -> Vec<(u64, FusedJob)>,
    mut sink: impl FnMut(u64, Result<FusedOutcome, Error>),
    mut observe: impl FnMut(FusedBlockStats),
) -> usize {
    const { assert!(W >= 1, "lane width must be at least 1") };
    let csr = q.csr();
    let source_dense = csr
        .dense(q.source())
        .expect("query source is live by construction");
    let plan = WidePlan::new(csr, source_dense);
    let mut scratch = WideScratch::<W>::for_plan(&plan);
    let node_bound = q.graph().node_bound();

    // Answer dense ids, shared by every job's certification poll.
    let answer_dense: Vec<Option<u32>> = q.answers().iter().map(|&a| plan.csr.dense(a)).collect();

    let mut completed = 0usize;
    let mut jobs: Vec<JobRun> = Vec::new();
    let mut est: Vec<f64> = Vec::with_capacity(answer_dense.len());
    let admit = |batch: Vec<(u64, FusedJob)>,
                 jobs: &mut Vec<JobRun>,
                 sink: &mut dyn FnMut(u64, Result<FusedOutcome, Error>),
                 completed: &mut usize| {
        for (id, job) in batch {
            match admit_job(id, job, answer_dense.len(), plan.n) {
                Ok(run) => jobs.push(run),
                Err(e) => {
                    sink(id, Err(e));
                    *completed += 1;
                }
            }
        }
    };
    admit(initial, &mut jobs, &mut sink, &mut completed);

    while !jobs.is_empty() {
        admit(source(), &mut jobs, &mut sink, &mut completed);

        // Deal lanes round-robin: each pass hands every unfinished job
        // its next batch, so W lanes split evenly across block-mates
        // and a lone job fills the whole block (solo wide behavior).
        let mut lanes: Vec<(usize, u32)> = Vec::with_capacity(W);
        let mut next_batch: Vec<u32> = jobs.iter().map(|j| j.batches_done).collect();
        'fill: loop {
            let mut progressed = false;
            for (ji, job) in jobs.iter().enumerate() {
                if lanes.len() == W {
                    break 'fill;
                }
                if next_batch[ji] < job.num_batches {
                    lanes.push((ji, next_batch[ji]));
                    next_batch[ji] += 1;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        debug_assert!(!lanes.is_empty(), "active jobs always have batches left");

        let sweep_start = std::time::Instant::now();
        let mut valid = [0u64; W];
        for (l, &(ji, b)) in lanes.iter().enumerate() {
            let job = &jobs[ji];
            draw_lane(&plan, &mut scratch, l, batch_seed(job.seed, b));
            valid[l] = batch_valid(b, job.trials_total);
        }
        propagate_block(&plan, &mut scratch, &valid);
        // Sweep cost is shared work; attribute it per lane so each
        // job's telemetry reflects its share of the fused block.
        let lane_share = sweep_start.elapsed().as_nanos() as u64 / lanes.len() as u64;

        let mut seen = vec![false; jobs.len()];
        let mut distinct_jobs = 0u32;
        for &(ji, _) in &lanes {
            if !seen[ji] {
                seen[ji] = true;
                distinct_jobs += 1;
            }
        }
        observe(FusedBlockStats {
            lanes: lanes.len() as u32,
            jobs: distinct_jobs,
        });

        // Demux lanes in deal order — each job consumes its lanes in
        // batch order, polling certification after every folded batch
        // exactly like the solo adaptive driver. Lanes of a job that
        // already stopped this block are wasted propagation, never
        // wrong output.
        for (l, &(ji, b)) in lanes.iter().enumerate() {
            let job = &mut jobs[ji];
            if job.done {
                continue;
            }
            debug_assert_eq!(b, job.batches_done, "lanes folded in batch order");
            let fold_start = std::time::Instant::now();
            fold_lane(&plan, &scratch, l, &mut job.counts);
            job.batches_done += 1;
            job.trials_done += BATCH_TRIALS.min(job.trials_total - job.trials_done);
            job.step_nanos += lane_share + fold_start.elapsed().as_nanos() as u64;
            if let Some(rule) = &job.adaptive {
                let poll_start = std::time::Instant::now();
                if rule.checked_gaps == 0 {
                    job.certified = true;
                } else {
                    est.clear();
                    let n = f64::from(job.trials_done.max(1));
                    est.extend(answer_dense.iter().map(|d| {
                        d.and_then(|d| job.counts.get(d as usize))
                            .map(|&c| c as f64 / n)
                            .unwrap_or(0.0)
                    }));
                    job.certified = sorted_gaps_certified(
                        &mut est,
                        rule.checked_gaps,
                        rule.epsilon,
                        rule.delta,
                        job.trials_done,
                    );
                }
                job.poll_nanos += poll_start.elapsed().as_nanos() as u64;
            }
            if job.certified || job.batches_done == job.num_batches {
                job.done = true;
                sink(job.id, finalize(&plan, job, node_bound));
                completed += 1;
            } else if job.deadline.is_some_and(|d| std::time::Instant::now() > d) {
                // Deadline poll after the certification check: a batch
                // that finishes the job on time always lands. An
                // aborted job reports its partial-trial telemetry and
                // frees its lanes for the next block.
                job.done = true;
                sink(
                    job.id,
                    Err(Error::DeadlineExceeded {
                        trials_used: job.trials_done,
                    }),
                );
                completed += 1;
            }
        }
        jobs.retain(|j| !j.done);
    }
    completed
}

/// Validates and prepares one job for the sweep.
fn admit_job(id: u64, job: FusedJob, answers: usize, n: usize) -> Result<JobRun, Error> {
    if job.trials == 0 {
        return Err(Error::ZeroTrials);
    }
    let adaptive = match job.policy {
        FusedPolicy::Fixed => None,
        FusedPolicy::Adaptive {
            epsilon,
            delta,
            top_k,
        } => {
            validate_params(epsilon, delta)?;
            let (checked_gaps, mode) = checked_gaps_and_mode(answers, top_k);
            Some(AdaptiveRule {
                epsilon,
                delta,
                checked_gaps,
                mode,
            })
        }
    };
    Ok(JobRun {
        id,
        seed: job.seed,
        trials_total: job.trials,
        num_batches: job.trials.div_ceil(BATCH_TRIALS),
        batches_done: 0,
        trials_done: 0,
        counts: vec![0u64; n],
        adaptive,
        deadline: job.deadline,
        certified: false,
        done: false,
        step_nanos: 0,
        poll_nanos: 0,
    })
}

/// Stamps a finished job's scores (and certificate, for adaptive
/// jobs) exactly as the solo runners would.
fn finalize(plan: &WidePlan, job: &JobRun, node_bound: usize) -> Result<FusedOutcome, Error> {
    let scores = project(&plan.csr, &job.counts, job.trials_done, node_bound);
    let certificate = match &job.adaptive {
        None => None,
        Some(rule) => Some(Certificate {
            trials_used: job.trials_done,
            epsilon: bounds::resolvable_epsilon(u64::from(job.trials_done), rule.delta)?,
            certified: job.certified,
            mode: rule.mode,
        }),
    };
    Ok(FusedOutcome {
        scores,
        certificate,
        trials_used: job.trials_done,
        step_nanos: job.step_nanos,
        poll_nanos: job.poll_nanos,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AdaptiveRunner, Ranker, WordMc};
    use biorank_graph::{generate, Prob, ProbGraph};

    fn p(v: f64) -> Prob {
        Prob::new(v).unwrap()
    }

    fn star() -> QueryGraph {
        let mut g = ProbGraph::new();
        let s = g.add_node(p(1.0));
        let mut answers = Vec::new();
        for q_val in [0.9, 0.6, 0.3] {
            let t = g.add_node(p(1.0));
            g.add_edge(s, t, p(q_val)).unwrap();
            answers.push(t);
        }
        QueryGraph::new(g, s, answers).unwrap()
    }

    fn run_all(q: &QueryGraph, jobs: Vec<(u64, FusedJob)>) -> Vec<(u64, FusedOutcome)> {
        let mut out = Vec::new();
        run_fused::<8>(
            q,
            jobs,
            Vec::new,
            |id, r| out.push((id, r.unwrap())),
            |_| {},
        );
        out.sort_by_key(|(id, _)| *id);
        out
    }

    #[test]
    fn fused_fixed_jobs_match_solo_bits() {
        let q = generate::layered_workflow(&generate::WorkflowParams::default(), 23);
        let jobs = vec![
            (
                0,
                FusedJob {
                    seed: 1,
                    trials: 1_000,
                    policy: FusedPolicy::Fixed,
                    deadline: None,
                },
            ),
            (
                1,
                FusedJob {
                    seed: 2,
                    trials: 777,
                    policy: FusedPolicy::Fixed,
                    deadline: None,
                },
            ),
            (
                2,
                FusedJob {
                    seed: 1,
                    trials: 64,
                    policy: FusedPolicy::Fixed,
                    deadline: None,
                },
            ),
        ];
        let out = run_all(&q, jobs);
        assert_eq!(
            out[0].1.scores.as_slice(),
            WordMc::new(1_000, 1).score(&q).unwrap().as_slice()
        );
        assert_eq!(
            out[1].1.scores.as_slice(),
            WordMc::new(777, 2).score(&q).unwrap().as_slice()
        );
        assert_eq!(
            out[2].1.scores.as_slice(),
            WordMc::new(64, 1).score(&q).unwrap().as_slice()
        );
    }

    #[test]
    fn fused_adaptive_jobs_match_solo_certificates() {
        let q = star();
        let jobs: Vec<(u64, FusedJob)> = (0..4)
            .map(|i| {
                (
                    i,
                    FusedJob {
                        seed: i + 1,
                        trials: 10_000,
                        policy: FusedPolicy::Adaptive {
                            epsilon: 0.02,
                            delta: 0.05,
                            top_k: if i == 3 { Some(1) } else { None },
                        },
                        deadline: None,
                    },
                )
            })
            .collect();
        let out = run_all(&q, jobs);
        for (id, outcome) in &out {
            let runner = AdaptiveRunner::new(WordMc::new(10_000, id + 1), 0.02, 0.05);
            let solo = if *id == 3 {
                runner.with_top_k(1).run(&q).unwrap()
            } else {
                runner.run(&q).unwrap()
            };
            assert_eq!(outcome.certificate, Some(solo.certificate), "job {id}");
            assert_eq!(
                outcome.scores.as_slice(),
                solo.scores.as_slice(),
                "job {id}"
            );
        }
    }

    #[test]
    fn source_admits_jobs_mid_sweep() {
        let q = star();
        let mut pending = vec![(
            7u64,
            FusedJob {
                seed: 9,
                trials: 640,
                policy: FusedPolicy::Fixed,
                deadline: None,
            },
        )];
        let mut results = Vec::new();
        run_fused::<4>(
            &q,
            vec![(
                0,
                FusedJob {
                    seed: 3,
                    trials: 2_000,
                    policy: FusedPolicy::Fixed,
                    deadline: None,
                },
            )],
            || std::mem::take(&mut pending),
            |id, r| results.push((id, r.unwrap())),
            |_| {},
        );
        results.sort_by_key(|(id, _)| *id);
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[0].1.scores.as_slice(),
            WordMc::new(2_000, 3).score(&q).unwrap().as_slice()
        );
        assert_eq!(
            results[1].1.scores.as_slice(),
            WordMc::new(640, 9).score(&q).unwrap().as_slice()
        );
    }

    #[test]
    fn invalid_jobs_fail_through_sink_without_killing_blockmates() {
        let q = star();
        let mut ok = Vec::new();
        let mut failed = Vec::new();
        run_fused::<8>(
            &q,
            vec![
                (
                    0,
                    FusedJob {
                        seed: 1,
                        trials: 0,
                        policy: FusedPolicy::Fixed,
                        deadline: None,
                    },
                ),
                (
                    1,
                    FusedJob {
                        seed: 1,
                        trials: 128,
                        policy: FusedPolicy::Adaptive {
                            epsilon: 2.0,
                            delta: 0.05,
                            top_k: None,
                        },
                        deadline: None,
                    },
                ),
                (
                    2,
                    FusedJob {
                        seed: 4,
                        trials: 128,
                        policy: FusedPolicy::Fixed,
                        deadline: None,
                    },
                ),
            ],
            Vec::new,
            |id, r| match r {
                Ok(o) => ok.push((id, o)),
                Err(e) => failed.push((id, e)),
            },
            |_| {},
        );
        assert_eq!(ok.len(), 1);
        assert_eq!(ok[0].0, 2);
        failed.sort_by_key(|(id, _)| *id);
        assert!(matches!(failed[0], (0, Error::ZeroTrials)));
        assert!(matches!(failed[1], (1, Error::InvalidParameter { .. })));
    }

    #[test]
    fn expired_deadline_fails_job_without_killing_blockmates() {
        // Job 0 carries a deadline already in the past; job 1 has none.
        // Job 0 must abort with DeadlineExceeded after its first folded
        // batch (the poll sits between batches) while job 1 completes
        // bit-identically to its solo run.
        let q = star();
        let mut ok = Vec::new();
        let mut failed = Vec::new();
        run_fused::<8>(
            &q,
            vec![
                (
                    0,
                    FusedJob {
                        seed: 1,
                        trials: 1_000_000,
                        policy: FusedPolicy::Fixed,
                        deadline: Some(
                            std::time::Instant::now() - std::time::Duration::from_millis(1),
                        ),
                    },
                ),
                (
                    1,
                    FusedJob {
                        seed: 2,
                        trials: 512,
                        policy: FusedPolicy::Fixed,
                        deadline: None,
                    },
                ),
            ],
            Vec::new,
            |id, r| match r {
                Ok(o) => ok.push((id, o)),
                Err(e) => failed.push((id, e)),
            },
            |_| {},
        );
        assert_eq!(ok.len(), 1);
        assert_eq!(ok[0].0, 1);
        assert_eq!(
            ok[0].1.scores.as_slice(),
            WordMc::new(512, 2).score(&q).unwrap().as_slice()
        );
        assert_eq!(failed.len(), 1);
        match &failed[0] {
            (0, Error::DeadlineExceeded { trials_used }) => {
                assert!(*trials_used >= 64, "at least one batch folded");
                assert!(*trials_used < 1_000_000, "aborted well short of budget");
            }
            other => panic!("expected job 0 DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn generous_deadline_matches_undeadlined_bits() {
        let q = star();
        let far = std::time::Instant::now() + std::time::Duration::from_secs(3600);
        let out = run_all(
            &q,
            vec![(
                0,
                FusedJob {
                    seed: 3,
                    trials: 2_000,
                    policy: FusedPolicy::Fixed,
                    deadline: Some(far),
                },
            )],
        );
        assert_eq!(
            out[0].1.scores.as_slice(),
            WordMc::new(2_000, 3).score(&q).unwrap().as_slice()
        );
    }

    #[test]
    fn observe_reports_shared_blocks() {
        let q = star();
        let mut widths = Vec::new();
        run_fused::<8>(
            &q,
            vec![
                (
                    0,
                    FusedJob {
                        seed: 1,
                        trials: 512,
                        policy: FusedPolicy::Fixed,
                        deadline: None,
                    },
                ),
                (
                    1,
                    FusedJob {
                        seed: 2,
                        trials: 512,
                        policy: FusedPolicy::Fixed,
                        deadline: None,
                    },
                ),
            ],
            Vec::new,
            |_, r| {
                r.unwrap();
            },
            |stats| widths.push((stats.lanes, stats.jobs)),
        );
        // 8 + 8 batches over 8-lane blocks: two full shared blocks.
        assert_eq!(widths, vec![(8, 2), (8, 2)]);
    }
}
