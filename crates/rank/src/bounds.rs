//! Theorem 3.1: how many Monte Carlo trials are enough?
//!
//! "Assume the scores of two nodes i and j are r(i) and r(j), with
//! r(i) = r(j) + ε (ε > 0). Running n independent random trials for each
//! node suffices to guarantee that the simulated scores are not
//! incorrectly ranked with probability at least 1 − δ, where
//! n ≥ (1+ε)³ / (ε²(1 + ε/3)) · ln(1/δ)."
//!
//! The proof (paper Appendix A) applies Bennett's inequality to the
//! per-trial difference variable Xᵢ ∈ {−1, 0, 1}. With 95% confidence
//! and separation ε = 0.02, about 10⁴ trials suffice — the number the
//! convergence experiment (Fig. 7) validates empirically.

use crate::Error;

/// The trial-count bound of Theorem 3.1.
///
/// `epsilon` is the smallest score difference that must be ranked
/// correctly; `delta` is the allowed failure probability. Both must be
/// in `(0, 1)`.
pub fn trials_needed(epsilon: f64, delta: f64) -> Result<u64, Error> {
    if !(epsilon > 0.0 && epsilon < 1.0) {
        return Err(Error::InvalidParameter {
            name: "epsilon",
            value: epsilon,
        });
    }
    if !(delta > 0.0 && delta < 1.0) {
        return Err(Error::InvalidParameter {
            name: "delta",
            value: delta,
        });
    }
    let e = epsilon;
    let n = (1.0 + e).powi(3) / (e * e * (1.0 + e / 3.0)) * (1.0 / delta).ln();
    Ok(n.ceil() as u64)
}

/// Does `trials` trials resolve an observed separation of `gap` at
/// failure probability `delta`?
///
/// The per-gap reading of the bound shared by the adaptive runner and
/// the top-k evaluator: one cheap closed-form `trials_needed`
/// evaluation (with the gap clamped into the bound's open domain)
/// instead of inverting by bisection. Non-positive gaps are never
/// resolved — a tie cannot be ordered by sampling.
pub fn resolves(gap: f64, delta: f64, trials: u64) -> bool {
    if !(gap > 0.0) {
        return false;
    }
    trials_needed(gap.min(1.0 - 1e-9), delta)
        .map(|needed| trials >= needed)
        .unwrap_or(false)
}

/// Inverts the bound: the separation ε that `trials` trials resolve at
/// failure probability `delta` (by bisection; the bound is monotone
/// decreasing in ε).
pub fn resolvable_epsilon(trials: u64, delta: f64) -> Result<f64, Error> {
    if trials == 0 {
        return Err(Error::ZeroTrials);
    }
    if !(delta > 0.0 && delta < 1.0) {
        return Err(Error::InvalidParameter {
            name: "delta",
            value: delta,
        });
    }
    let (mut lo, mut hi) = (1e-9, 1.0 - 1e-9);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        let needed = trials_needed(mid, delta)?;
        if needed > trials {
            lo = mid; // need a larger separation for this few trials
        } else {
            hi = mid;
        }
    }
    Ok(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_is_about_ten_thousand() {
        // "Choosing a 95% confidence and separable difference between
        // two scores ε = 0.02, we learn that 10,000 trials should be
        // enough."
        let n = trials_needed(0.02, 0.05).unwrap();
        assert!((7_000..=10_000).contains(&n), "n = {n}");
    }

    #[test]
    fn bound_is_monotone_in_epsilon() {
        let a = trials_needed(0.01, 0.05).unwrap();
        let b = trials_needed(0.02, 0.05).unwrap();
        let c = trials_needed(0.1, 0.05).unwrap();
        assert!(a > b && b > c, "{a} {b} {c}");
    }

    #[test]
    fn bound_is_monotone_in_delta() {
        let strict = trials_needed(0.02, 0.01).unwrap();
        let loose = trials_needed(0.02, 0.2).unwrap();
        assert!(strict > loose);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(trials_needed(0.0, 0.05).is_err());
        assert!(trials_needed(1.0, 0.05).is_err());
        assert!(trials_needed(0.02, 0.0).is_err());
        assert!(trials_needed(0.02, 1.0).is_err());
        assert!(trials_needed(f64::NAN, 0.05).is_err());
    }

    #[test]
    fn epsilon_inversion_round_trips() {
        for &(e, d) in &[(0.02, 0.05), (0.05, 0.01), (0.1, 0.1)] {
            let n = trials_needed(e, d).unwrap();
            let back = resolvable_epsilon(n, d).unwrap();
            assert!(
                back <= e + 1e-3,
                "ε={e}: n={n} trials should resolve ε'={back} ≤ ε"
            );
        }
    }

    #[test]
    fn resolvable_epsilon_shrinks_with_trials() {
        let few = resolvable_epsilon(100, 0.05).unwrap();
        let many = resolvable_epsilon(100_000, 0.05).unwrap();
        assert!(many < few);
    }

    #[test]
    fn resolves_agrees_with_trials_needed() {
        let n = trials_needed(0.1, 0.05).unwrap();
        assert!(resolves(0.1, 0.05, n));
        assert!(!resolves(0.1, 0.05, n - 1));
        // Wider gaps resolve with the same trials; ties never do.
        assert!(resolves(0.5, 0.05, n));
        assert!(!resolves(0.0, 0.05, u64::MAX));
        assert!(!resolves(-0.1, 0.05, u64::MAX));
        assert!(!resolves(f64::NAN, 0.05, u64::MAX));
        // Gaps at or above 1.0 are clamped into the bound's domain
        // instead of erroring out of the stopping rule.
        assert!(resolves(1.0, 0.05, n));
        // An invalid δ never certifies.
        assert!(!resolves(0.1, 0.0, u64::MAX));
    }

    #[test]
    fn zero_trials_rejected() {
        assert!(matches!(
            resolvable_epsilon(0, 0.05),
            Err(Error::ZeroTrials)
        ));
    }
}
