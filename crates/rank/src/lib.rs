//! # biorank-rank
//!
//! The five ranking semantics of the BioRank paper ("Integrating and
//! Ranking Uncertain Scientific Data", Detwiler et al., ICDE 2009, §3),
//! over probabilistic query graphs:
//!
//! | Method | Type | Implementation |
//! |---|---|---|
//! | Reliability | probabilistic (possible worlds) | [`TraversalMc`] (Algorithm 3.1), [`WordMc`] (64 trials/word), [`NaiveMc`], [`ReducedMc`], [`ClosedReliability`] |
//! | Propagation | probabilistic (local) | [`Propagation`] (Algorithm 3.2) |
//! | Diffusion | probabilistic (additive) | [`Diffusion`] (Algorithm 3.3) |
//! | InEdge | deterministic | [`InEdge`] |
//! | PathCount | deterministic | [`PathCount`] |
//!
//! All implement [`Ranker`]; [`Ranking`] turns score vectors into the
//! tie-interval rankings of the paper's Tables 2–3, and [`bounds`]
//! provides the Theorem 3.1 trial-count bound.
//!
//! The Monte Carlo engines additionally implement the incremental
//! [`Estimator`] contract (`begin`/`step`/`snapshot`/`finish` over
//! 64-trial batches), which [`AdaptiveRunner`] drives with
//! bound-certified early termination: batches stop as soon as the
//! running ranking separates at the (ε, δ) the accumulated trials
//! resolve, returning a [`Certificate`] alongside the scores. When
//! only the top `k` answers matter,
//! [`AdaptiveRunner::with_top_k`] certifies just that prefix and its
//! boundary gap — the certificate's [`CertificateMode`] records which
//! contract was checked.
//!
//! ```
//! use biorank_graph::{Prob, ProbGraph, QueryGraph};
//! use biorank_rank::{Ranker, TraversalMc, Ranking};
//!
//! let mut g = ProbGraph::new();
//! let s = g.add_node(Prob::ONE);
//! let t = g.add_node(Prob::new(0.9).unwrap());
//! g.add_edge(s, t, Prob::new(0.5).unwrap()).unwrap();
//! let q = QueryGraph::new(g, s, vec![t]).unwrap();
//! let scores = TraversalMc::new(10_000, 42).score(&q).unwrap();
//! let ranking = Ranking::rank(scores.answers(&q));
//! assert_eq!(ranking.entries()[0].node, t);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adaptive;
pub mod bounds;
mod deterministic;
mod diffusion;
pub mod estimator;
pub mod explain;
pub mod features;
pub mod fused;
mod mc;
pub mod planner;
mod propagation;
mod reliability;
mod score;
mod ties;
mod topk;
mod word;

pub use adaptive::{AdaptiveOutcome, AdaptiveRunner, Certificate, CertificateMode};
pub use deterministic::{InEdge, PathCount};
pub use diffusion::{Diffusion, InnerSolver};
pub use estimator::{BatchStats, Estimator, BATCH_TRIALS};
pub use features::{GraphFeatures, PlanFeatures, TrialsPolicy};
pub use fused::{run_fused, FusedBlockStats, FusedJob, FusedOutcome, FusedPolicy};
pub use mc::{McState, NaiveMc, NaiveState, TraversalMc};
pub use planner::{plan, CalibrationInput, CostModel, Plan, Strategy, StrategyTelemetry};
pub use propagation::Propagation;
pub use reliability::{ClosedReliability, ReducedMc, SolveMode};
pub use score::{Ranker, Scores};
pub use ties::{RankedEntry, Ranking, TieGroup};
pub use topk::{TopK, TopKResult};
pub use word::{WordMc, WordState};

use std::fmt;

/// Errors produced by the ranking algorithms.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// Monte Carlo estimation requires at least one trial.
    ZeroTrials,
    /// A numeric parameter was outside its valid range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// An underlying graph operation failed (e.g. PathCount on a cyclic
    /// graph).
    Graph(biorank_graph::Error),
    /// A deadline-bounded run was aborted between estimator batches
    /// before it certified or reached its trial ceiling. `trials_used`
    /// is the partial-trial telemetry: how many Monte Carlo trials had
    /// completed when the deadline fired. Aborting never alters the
    /// sample schedule of runs that do complete — the deadline poll
    /// sits between batches, exactly like the certification poll.
    DeadlineExceeded {
        /// Trials completed before the deadline fired.
        trials_used: u32,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ZeroTrials => write!(f, "Monte Carlo requires at least one trial"),
            Error::InvalidParameter { name, value } => {
                write!(f, "parameter {name} = {value} outside valid range")
            }
            Error::Graph(e) => write!(f, "{e}"),
            Error::DeadlineExceeded { trials_used } => {
                write!(f, "deadline_exceeded after {trials_used} trials")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<biorank_graph::Error> for Error {
    fn from(e: biorank_graph::Error) -> Self {
        Error::Graph(e)
    }
}

/// The five methods of the paper's evaluation, with the configurations
/// used there: reliability via reduction+Monte Carlo, propagation and
/// diffusion in automatic mode.
///
/// `trials`/`seed` parameterize the reliability estimator.
pub fn paper_rankers(trials: u32, seed: u64) -> Vec<Box<dyn Ranker + Send + Sync>> {
    vec![
        Box::new(ReducedMc::new(trials, seed)),
        Box::new(Propagation::auto()),
        Box::new(Diffusion::auto()),
        Box::new(InEdge),
        Box::new(PathCount),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use biorank_graph::{Prob, ProbGraph, QueryGraph};

    #[test]
    fn paper_rankers_have_figure_names() {
        let rankers = paper_rankers(100, 1);
        let names: Vec<_> = rankers.iter().map(|r| r.name()).collect();
        assert_eq!(names, vec!["Rel(R&MC)", "Prop", "Diff", "InEdge", "PathC"]);
    }

    #[test]
    fn all_rankers_run_on_a_simple_graph() {
        let mut g = ProbGraph::new();
        let s = g.add_node(Prob::ONE);
        let t = g.add_node(Prob::new(0.9).unwrap());
        g.add_edge(s, t, Prob::HALF).unwrap();
        let q = QueryGraph::new(g, s, vec![t]).unwrap();
        for r in paper_rankers(500, 7) {
            let scores = r.score(&q).unwrap_or_else(|e| panic!("{}: {e}", r.name()));
            assert!(scores.get(t) > 0.0, "{} scored zero", r.name());
        }
    }

    #[test]
    fn error_display_and_source() {
        assert!(Error::ZeroTrials.to_string().contains("trial"));
        let e: Error = biorank_graph::Error::CycleDetected.into();
        assert!(std::error::Error::source(&e).is_some());
        let e = Error::InvalidParameter {
            name: "epsilon",
            value: 2.0,
        };
        assert!(e.to_string().contains("epsilon"));
    }
}
