//! The cost-based query planner behind `estimator: "auto"`.
//!
//! The paper's efficiency study (Fig. 8a) is a crossover chart: the
//! closed solution wins on small reducible graphs, reduction + Monte
//! Carlo wins in the middle, and plain sampling wins once reduction
//! stops paying. The repo reproduces every one of those strategies —
//! this module picks between them per query, from a cheap feature
//! vector ([`PlanFeatures`]) and a calibrated linear cost model
//! ([`CostModel`]), instead of making the caller choose.
//!
//! Planning is a **pure function**: [`plan`] reads only the feature
//! vector and the model constants, so a fixed `(features, model)`
//! pair always yields the same [`Plan`] — the bit-identity discipline
//! of the rest of the crate extends to strategy choice. Calibration
//! ([`CostModel::calibrate`]) is equally deterministic: given the
//! same telemetry aggregates it produces the same blended model.

use crate::features::{PlanFeatures, TrialsPolicy};

/// One executable strategy the planner chooses between. Each maps to
/// a concrete engine the service can also be asked for explicitly, so
/// a planned execution is byte-identical to an explicit request for
/// the same strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Per-answer closed-form reliability ([`crate::ClosedReliability`]):
    /// exact, deterministic, no trials — but only predictably cheap
    /// when the paper's reduction theory applies (Theorem 3.2 schema
    /// shapes, or a graph whose reduction residual is trivial).
    Exact,
    /// Graph reductions then traversal Monte Carlo on the residual
    /// ([`crate::ReducedMc`], the paper's R&M configuration).
    ReducedMc,
    /// Word-parallel Monte Carlo, 64 trials per machine word
    /// ([`crate::WordMc`]) — solo or fused into a concurrent sweep.
    WordMc,
    /// Per-trial traversal Monte Carlo ([`crate::TraversalMc`], the
    /// paper's reference engine M).
    TraversalMc,
}

impl Strategy {
    /// Every strategy, in the planner's deterministic tie-break order
    /// (earlier wins a cost tie).
    pub const ALL: [Strategy; 4] = [
        Strategy::Exact,
        Strategy::ReducedMc,
        Strategy::WordMc,
        Strategy::TraversalMc,
    ];

    /// The canonical wire / metric spelling.
    pub fn wire_name(&self) -> &'static str {
        match self {
            Strategy::Exact => "exact",
            Strategy::ReducedMc => "reduced",
            Strategy::WordMc => "word",
            Strategy::TraversalMc => "traversal",
        }
    }

    /// Parses the wire spelling.
    pub fn parse(name: &str) -> Option<Strategy> {
        Some(match name {
            "exact" => Strategy::Exact,
            "reduced" => Strategy::ReducedMc,
            "word" => Strategy::WordMc,
            "traversal" => Strategy::TraversalMc,
            _ => return None,
        })
    }

    /// Dense index into per-strategy arrays ([`CostModel::scale`],
    /// [`CalibrationInput::observed`]).
    pub fn index(&self) -> usize {
        match self {
            Strategy::Exact => 0,
            Strategy::ReducedMc => 1,
            Strategy::WordMc => 2,
            Strategy::TraversalMc => 3,
        }
    }
}

/// The calibrated constants of the planner's linear cost model.
///
/// Structural coefficients (`*_ns` fields) are seeded from the
/// BENCH_mc.json rows at commit `e6e637c` and the measured shapes of
/// the bench graphs; the per-strategy `scale` factors start at 1 and
/// absorb everything the seed host and the serving host disagree on —
/// online calibration ([`calibrate`](CostModel::calibrate)) touches
/// only the scales and the adaptive-trial expectations, never the
/// structural coefficients.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Traversal Monte Carlo: ns per trial per live edge. Seed: the
    /// `word_vs_traversal/abcc8/traversal_10000` row, 20.7 ms over
    /// 10⁴ trials × 329 edges ≈ 6.3, rounded up toward the denser
    /// workflow graphs.
    pub trav_trial_edge_ns: f64,
    /// Word-parallel Monte Carlo: ns per trial per live edge on a
    /// DAG. Seed: `abcc8/word_10000`, 1.14 ms over 10⁴ × 329 ≈ 0.35,
    /// rounded up toward the workflow rows (≈ 0.58).
    pub word_trial_edge_ns: f64,
    /// Multiplier on the word engine's cost for cyclic graphs, which
    /// pay its monotone-fixpoint fallback instead of the single topo
    /// pass.
    pub word_cycle_factor: f64,
    /// One reduction pass (clone + rules to fixpoint): ns per edge.
    /// Seed: `fig8a/R&M2_reduce_mc_1000` minus its Monte Carlo share,
    /// ≈ 0.18 ms over 329 edges.
    pub reduce_edge_ns: f64,
    /// Closed solution: ns per answer per edge (each answer prunes
    /// and reduces its own subgraph). Seed: `fig8a/C_closed_solution`,
    /// 5.65 ms over 97 answers × 329 edges ≈ 177.
    pub exact_answer_edge_ns: f64,
    /// Flat per-execution overhead (state setup, ranking assembly).
    pub setup_ns: f64,
    /// Expected fraction of the trial ceiling an adaptive
    /// full-certification run consumes before stopping. Seed: the
    /// `adaptive_*_10000` rows certify at 3.2k–6.3k of 10⁴.
    pub adaptive_full_frac: f64,
    /// Expected trials per certified prefix element under top-k
    /// certification. Seed: the `adaptive_topk_*` rows (k = 1 → 256,
    /// k = 10 → 2112–4544).
    pub topk_trials_per_k: f64,
    /// Per-strategy multiplicative correction, indexed by
    /// [`Strategy::index`]. Starts at 1; online calibration blends it
    /// toward the observed/predicted latency ratio.
    pub scale: [f64; 4],
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            trav_trial_edge_ns: 7.0,
            word_trial_edge_ns: 0.45,
            word_cycle_factor: 4.0,
            reduce_edge_ns: 500.0,
            exact_answer_edge_ns: 180.0,
            setup_ns: 20_000.0,
            adaptive_full_frac: 0.6,
            topk_trials_per_k: 384.0,
            scale: [1.0; 4],
        }
    }
}

/// Exponential-decay weight of one calibration round: how far each
/// scale factor moves toward the freshly observed ratio.
pub const CALIBRATION_DECAY: f64 = 0.3;

/// Minimum per-strategy samples before telemetry moves the model.
pub const MIN_CALIBRATION_SAMPLES: u64 = 4;

/// Telemetry aggregates for one strategy, distilled from a
/// `biorank-obs` metrics snapshot (the service folds its
/// `planner.observed_ns.*` / `planner.predicted_ns.*` histograms and
/// `trials_used` / `certified` series into this shape).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StrategyTelemetry {
    /// Mean observed execution latency of planned runs, ns.
    pub observed_mean_ns: f64,
    /// Mean latency the model predicted for those same runs, ns.
    pub predicted_mean_ns: f64,
    /// How many planned executions the means aggregate.
    pub samples: u64,
}

/// One calibration round's input: per-strategy observed/predicted
/// aggregates plus the adaptive-trial telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CalibrationInput {
    /// Per-strategy aggregates, indexed by [`Strategy::index`].
    pub observed: [Option<StrategyTelemetry>; 4],
    /// Mean `trials_used / max_trials` of adaptive full-certification
    /// runs, when any were observed.
    pub mean_trials_frac: Option<f64>,
}

impl CostModel {
    /// Predicted trial count for this feature vector: the fixed
    /// budget verbatim, or the calibrated expectation of the adaptive
    /// runner's early stop.
    pub fn predicted_trials(&self, f: &PlanFeatures) -> f64 {
        match f.trials {
            TrialsPolicy::Fixed(n) => f64::from(n),
            TrialsPolicy::Adaptive { max_trials } => {
                let full = f64::from(max_trials) * self.adaptive_full_frac.clamp(0.05, 1.0);
                match f.top_k {
                    // A top-k prefix certifies as soon as k leading
                    // gaps (plus the boundary) resolve — never more
                    // work than full certification.
                    Some(k) => (self.topk_trials_per_k * f64::from(k.max(1)))
                        .clamp(f64::from(crate::BATCH_TRIALS), full.max(64.0)),
                    None => full,
                }
            }
        }
    }

    /// Whether the closed solution is predictably cheap on this
    /// query: the schema shape satisfies Theorem 3.2, or the
    /// instance's reduction residual is already trivial (at most one
    /// surviving edge per answer), so per-answer reduction cannot get
    /// stuck and fall into the factoring / sampling backstops.
    pub fn exact_eligible(&self, f: &PlanFeatures) -> bool {
        f.graph.schema_reducible || f.graph.reduced_edges <= f.graph.answers
    }

    /// Predicted execution cost of `strategy` on `f`, in nanoseconds.
    /// [`Strategy::Exact`] is infinite when ineligible
    /// ([`exact_eligible`](CostModel::exact_eligible)) — the planner
    /// then counts the skip as a fallback.
    pub fn predicted_ns(&self, strategy: Strategy, f: &PlanFeatures) -> f64 {
        let edges = f64::from(f.graph.edges).max(1.0);
        let trials = self.predicted_trials(f);
        let raw = match strategy {
            Strategy::Exact => {
                if !self.exact_eligible(f) {
                    return f64::INFINITY;
                }
                f64::from(f.graph.answers.max(1)) * edges * self.exact_answer_edge_ns
            }
            Strategy::ReducedMc => {
                edges * self.reduce_edge_ns
                    + trials * f64::from(f.graph.reduced_edges) * self.trav_trial_edge_ns
            }
            Strategy::WordMc => {
                let cycle = if f.graph.acyclic {
                    1.0
                } else {
                    self.word_cycle_factor
                };
                trials * edges * self.word_trial_edge_ns * cycle
            }
            Strategy::TraversalMc => trials * edges * self.trav_trial_edge_ns,
        };
        self.setup_ns + raw * self.scale[strategy.index()]
    }

    /// One online calibration round: blends each strategy's scale
    /// factor toward its observed/predicted latency ratio (clamped to
    /// [0.25, 4] per round so one outlier cannot capsize the model)
    /// and the adaptive-trial expectation toward the observed
    /// `trials_used` fraction, both with exponential decay
    /// [`CALIBRATION_DECAY`]. Returns `true` when any constant moved.
    pub fn calibrate(&mut self, input: &CalibrationInput) -> bool {
        let mut moved = false;
        for strategy in Strategy::ALL {
            let Some(t) = input.observed[strategy.index()] else {
                continue;
            };
            if t.samples < MIN_CALIBRATION_SAMPLES
                || !(t.predicted_mean_ns > 0.0)
                || !(t.observed_mean_ns > 0.0)
            {
                continue;
            }
            let ratio = (t.observed_mean_ns / t.predicted_mean_ns).clamp(0.25, 4.0);
            let scale = &mut self.scale[strategy.index()];
            let next = (*scale * (1.0 + CALIBRATION_DECAY * (ratio - 1.0))).clamp(0.01, 100.0);
            if next != *scale {
                *scale = next;
                moved = true;
            }
        }
        if let Some(frac) = input.mean_trials_frac {
            if frac.is_finite() && frac > 0.0 {
                let target = frac.clamp(0.05, 1.0);
                let next = self.adaptive_full_frac
                    + CALIBRATION_DECAY * (target - self.adaptive_full_frac);
                if next != self.adaptive_full_frac {
                    self.adaptive_full_frac = next;
                    moved = true;
                }
            }
        }
        moved
    }
}

/// The planner's verdict for one request: the chosen strategy, what
/// the model expects it to cost, and the feature vector it read —
/// echoed in service responses next to the certificate, and printed
/// by `biorank query --explain`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Plan {
    /// The cheapest eligible strategy.
    pub strategy: Strategy,
    /// The model's cost prediction for it, nanoseconds.
    pub predicted_ns: u64,
    /// The feature vector the choice was scored on.
    pub features: PlanFeatures,
    /// `true` when a strategy that scored cheaper was skipped as
    /// ineligible (today: the closed solution outside its certified
    /// territory) — surfaced as the service's `planner.fallback`
    /// counter.
    pub fallback: bool,
}

/// Chooses the cheapest eligible strategy for `features` under
/// `model`. Pure and total: every feature vector yields a plan (the
/// Monte Carlo strategies are always eligible), equal inputs yield
/// equal plans, and cost ties break toward the earlier entry of
/// [`Strategy::ALL`].
pub fn plan(features: &PlanFeatures, model: &CostModel) -> Plan {
    let mut best = Strategy::ALL[0];
    let mut best_ns = f64::INFINITY;
    let mut skipped_cheaper = false;
    for strategy in Strategy::ALL {
        let ns = model.predicted_ns(strategy, features);
        if ns.is_infinite() {
            // Ineligible. If it would have been the front-runner so
            // far, the eventual choice is a fallback.
            skipped_cheaper = true;
            continue;
        }
        if ns < best_ns {
            best = strategy;
            best_ns = ns;
        }
    }
    // `skipped_cheaper` so far only records that *something* was
    // skipped; it is a fallback only when the skipped strategy would
    // have beaten the winner. Re-score it against the unclamped
    // eligibility to decide.
    let fallback = skipped_cheaper && {
        // Lift the eligibility gate by scoring as if reducible.
        let mut f = *features;
        f.graph.schema_reducible = true;
        model.predicted_ns(Strategy::Exact, &f) < best_ns
    };
    Plan {
        strategy: best,
        predicted_ns: best_ns.round() as u64,
        features: *features,
        fallback,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::GraphFeatures;

    fn graph(nodes: u32, edges: u32, answers: u32) -> GraphFeatures {
        GraphFeatures {
            nodes,
            edges,
            answers,
            acyclic: true,
            reduced_nodes: nodes,
            reduced_edges: edges,
            schema_reducible: false,
        }
    }

    /// The abcc8 bench graph under the serve-default adaptive policy.
    fn abcc8_features() -> PlanFeatures {
        PlanFeatures {
            graph: GraphFeatures {
                nodes: 185,
                edges: 329,
                answers: 97,
                acyclic: true,
                reduced_nodes: 129,
                reduced_edges: 269,
                schema_reducible: false,
            },
            top_k: None,
            trials: TrialsPolicy::Adaptive { max_trials: 10_000 },
        }
    }

    #[test]
    fn plan_is_deterministic() {
        let f = abcc8_features();
        let m = CostModel::default();
        assert_eq!(plan(&f, &m), plan(&f, &m));
    }

    #[test]
    fn word_wins_the_bench_graphs() {
        // The seeded model must reproduce the BENCH_mc.json ordering
        // on all three bench graphs (word ~20× traversal, reduction
        // not paying, exact ineligible under the ontology schema).
        let m = CostModel::default();
        for (graph_f, label) in [
            (abcc8_features().graph, "abcc8"),
            (
                GraphFeatures {
                    nodes: 38,
                    edges: 98,
                    answers: 8,
                    acyclic: true,
                    reduced_nodes: 35,
                    reduced_edges: 95,
                    schema_reducible: false,
                },
                "workflow",
            ),
            (
                GraphFeatures {
                    nodes: 54,
                    edges: 154,
                    answers: 24,
                    acyclic: true,
                    reduced_nodes: 52,
                    reduced_edges: 152,
                    schema_reducible: false,
                },
                "workflow_wide",
            ),
        ] {
            for trials in [
                TrialsPolicy::Fixed(1_000),
                TrialsPolicy::Fixed(10_000),
                TrialsPolicy::Adaptive { max_trials: 10_000 },
            ] {
                let f = PlanFeatures::for_request(graph_f, None, trials);
                let p = plan(&f, &m);
                assert_eq!(p.strategy, Strategy::WordMc, "{label} under {trials:?}");
            }
        }
    }

    #[test]
    fn exact_wins_small_reducible_graphs_with_big_budgets() {
        let f = PlanFeatures {
            graph: graph(6, 5, 2).with_schema_reducible(true),
            top_k: None,
            trials: TrialsPolicy::Fixed(1_000_000),
        };
        let p = plan(&f, &CostModel::default());
        assert_eq!(p.strategy, Strategy::Exact);
        assert!(!p.fallback);
    }

    #[test]
    fn trivial_residual_enables_exact_without_schema_verdict() {
        let mut g = graph(6, 5, 2);
        g.reduced_nodes = 3;
        g.reduced_edges = 2; // ≤ answers: per-answer closure is trivial
        let f = PlanFeatures {
            graph: g,
            top_k: None,
            trials: TrialsPolicy::Fixed(1_000_000),
        };
        assert_eq!(plan(&f, &CostModel::default()).strategy, Strategy::Exact);
    }

    #[test]
    fn ineligible_exact_counts_as_fallback_only_when_it_would_win() {
        let m = CostModel::default();
        // Big budget on an irreducible graph: exact would be cheapest
        // if eligible, so the pick is a fallback.
        let f = PlanFeatures {
            graph: graph(6, 5, 2),
            top_k: None,
            trials: TrialsPolicy::Fixed(1_000_000),
        };
        let p = plan(&f, &m);
        assert_ne!(p.strategy, Strategy::Exact);
        assert!(p.fallback);
        // Wide answer set, small budget: the closed solution's
        // per-answer sweeps would lose even if eligible; no fallback.
        let f = PlanFeatures {
            graph: graph(100, 200, 50),
            top_k: None,
            trials: TrialsPolicy::Fixed(1_000),
        };
        assert!(!plan(&f, &m).fallback);
    }

    #[test]
    fn reduction_pays_when_the_residual_collapses() {
        // 95% of edges reduce away but the residual stays above the
        // per-answer bar: R&M beats plain sampling and the word
        // engine once trials dominate.
        let mut g = graph(1000, 2000, 10);
        g.reduced_nodes = 30;
        g.reduced_edges = 40;
        let f = PlanFeatures {
            graph: g,
            top_k: None,
            trials: TrialsPolicy::Fixed(1_000_000),
        };
        let p = plan(&f, &CostModel::default());
        assert_eq!(p.strategy, Strategy::ReducedMc);
    }

    #[test]
    fn topk_shrinks_predicted_trials() {
        let m = CostModel::default();
        let full = PlanFeatures {
            graph: abcc8_features().graph,
            top_k: None,
            trials: TrialsPolicy::Adaptive { max_trials: 10_000 },
        };
        let topk = PlanFeatures {
            top_k: Some(1),
            ..full
        };
        assert!(m.predicted_trials(&topk) < m.predicted_trials(&full));
        assert!(m.predicted_trials(&topk) >= f64::from(crate::BATCH_TRIALS));
    }

    #[test]
    fn cyclic_graphs_tax_the_word_engine() {
        let m = CostModel::default();
        let dag = PlanFeatures {
            graph: graph(50, 200, 5),
            top_k: None,
            trials: TrialsPolicy::Fixed(10_000),
        };
        let mut cyc = dag;
        cyc.graph.acyclic = false;
        assert!(
            m.predicted_ns(Strategy::WordMc, &cyc) > m.predicted_ns(Strategy::WordMc, &dag),
            "cycles must raise the word engine's predicted cost"
        );
    }

    #[test]
    fn calibration_moves_toward_observed_ratios_and_is_deterministic() {
        let mut m = CostModel::default();
        let mut input = CalibrationInput::default();
        input.observed[Strategy::WordMc.index()] = Some(StrategyTelemetry {
            observed_mean_ns: 2_000_000.0,
            predicted_mean_ns: 1_000_000.0,
            samples: 10,
        });
        input.mean_trials_frac = Some(0.4);
        assert!(m.calibrate(&input));
        assert!(m.scale[Strategy::WordMc.index()] > 1.0);
        assert!(m.adaptive_full_frac < 0.6);
        // Same input, same starting model ⇒ same blended model.
        let mut m2 = CostModel::default();
        m2.calibrate(&input);
        assert_eq!(m, m2);
    }

    #[test]
    fn calibration_ignores_thin_samples() {
        let mut m = CostModel::default();
        let mut input = CalibrationInput::default();
        input.observed[Strategy::WordMc.index()] = Some(StrategyTelemetry {
            observed_mean_ns: 9e9,
            predicted_mean_ns: 1.0,
            samples: MIN_CALIBRATION_SAMPLES - 1,
        });
        assert!(!m.calibrate(&input));
        assert_eq!(m, CostModel::default());
    }

    #[test]
    fn calibrated_model_still_plans_deterministically() {
        let mut m = CostModel::default();
        let mut input = CalibrationInput::default();
        input.observed[Strategy::TraversalMc.index()] = Some(StrategyTelemetry {
            observed_mean_ns: 500_000.0,
            predicted_mean_ns: 2_000_000.0,
            samples: 100,
        });
        m.calibrate(&input);
        let f = abcc8_features();
        assert_eq!(plan(&f, &m), plan(&f, &m));
    }

    #[test]
    fn strategy_wire_names_roundtrip() {
        for s in Strategy::ALL {
            assert_eq!(Strategy::parse(s.wire_name()), Some(s));
        }
        assert_eq!(Strategy::parse("nope"), None);
    }
}
