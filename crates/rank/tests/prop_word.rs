//! Property tests pinning the word-parallel Monte Carlo engine against
//! ground truth.
//!
//! `WordMc` replaces per-trial DFS sampling with 64-trials-per-word
//! bitmask propagation; these tests assert that the change of schedule
//! never changes the semantics: on arbitrary small DAG query graphs the
//! estimate must sit within a 3σ binomial bound of the exact
//! possible-worlds reliability, and the traversal engine must agree
//! with it statistically on the same inputs.

use biorank_graph::{exact, NodeId, Prob, ProbGraph, QueryGraph};
use biorank_rank::{Ranker, TraversalMc, WordMc};
use proptest::prelude::*;

const TRIALS: u32 = 8_192;

/// Small random DAG query graphs (edges only run from lower to higher
/// node ids) with probabilities quantized to eighths, kept within the
/// enumeration budget of `exact::enumerate`.
fn small_dag() -> impl Strategy<Value = QueryGraph> {
    (2usize..=7)
        .prop_flat_map(|n| {
            let probs = proptest::collection::vec(0u8..=8, n);
            let edges = proptest::collection::vec(((0usize..n), (0usize..n), 1u8..=8), 1..=12);
            (Just(n), probs, edges)
        })
        .prop_map(|(n, probs, edges)| {
            let mut g = ProbGraph::new();
            let ids: Vec<NodeId> = (0..n)
                .map(|i| {
                    let p = if i == 0 {
                        Prob::ONE // source certain, like the query node
                    } else {
                        Prob::new(f64::from(probs[i]) / 8.0).unwrap()
                    };
                    g.add_node(p)
                })
                .collect();
            for (u, v, q) in edges {
                // Orient every edge forward: the graph is a DAG by
                // construction, so WordMc takes the topological
                // single-pass fast path.
                let (u, v) = (u.min(v), u.max(v));
                if u != v {
                    let _ = g.add_edge(ids[u], ids[v], Prob::new(f64::from(q) / 8.0).unwrap());
                }
            }
            let target = ids[n - 1];
            QueryGraph::new(g, ids[0], vec![target]).expect("source and target are live")
        })
        .prop_filter("stay within enumeration budget", |q| {
            let g = q.graph();
            let uncertain = g
                .nodes()
                .filter(|&x| {
                    let p = g.node_p(x).get();
                    p > 0.0 && p < 1.0
                })
                .count()
                + g.edges()
                    .filter(|&e| {
                        let v = g.edge_q(e).get();
                        v > 0.0 && v < 1.0
                    })
                    .count();
            uncertain <= 18
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The word-parallel estimate sits within 3σ of exact reliability
    /// (binomial standard deviation at the configured trial count).
    #[test]
    fn word_mc_within_three_sigma_of_exact(q in small_dag()) {
        let target = q.answers()[0];
        let truth = exact::enumerate(q.graph(), q.source(), target).unwrap();
        let est = WordMc::new(TRIALS, 1).score(&q).unwrap().get(target);
        let sigma = (truth * (1.0 - truth) / f64::from(TRIALS)).sqrt();
        // The 1e-9 floor covers the degenerate σ = 0 cases (truth 0 or
        // 1), where the estimate must be exact.
        prop_assert!(
            (est - truth).abs() <= 3.0 * sigma + 1e-9,
            "word {est} vs exact {truth} (sigma {sigma})"
        );
    }

    /// Traversal and word engines estimate the same quantity: their
    /// estimates agree within a combined 3σ band around each other.
    #[test]
    fn word_and_traversal_agree_statistically(q in small_dag()) {
        let target = q.answers()[0];
        let word = WordMc::new(TRIALS, 1).score(&q).unwrap().get(target);
        let trav = TraversalMc::new(TRIALS, 2).score(&q).unwrap().get(target);
        // Bound the spread via the worst-case binomial σ at p = 1/2;
        // both engines contribute noise, hence the factor √2.
        let sigma = (0.25 / f64::from(TRIALS)).sqrt() * std::f64::consts::SQRT_2;
        prop_assert!(
            (word - trav).abs() <= 3.0 * sigma + 1e-9,
            "word {word} vs traversal {trav}"
        );
    }
}
