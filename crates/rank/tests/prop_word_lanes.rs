//! Bit-identity proofs for the wide-lane word engine and fused sweeps.
//!
//! The whole wide-lane design rests on one contract: batch `b` of a
//! `(trials, seed)` schedule draws from the RNG stream keyed
//! `(seed, b)` no matter which lane of which block — of whose sweep —
//! executes it. These tests pin that contract three ways:
//!
//! 1. **Golden bits** — score hashes, adaptive trial counts, and
//!    certificates recorded from the pre-widening single-mask engine;
//!    any schedule drift fails these against history, not against a
//!    sibling that drifted identically.
//! 2. **Lane-width properties** — on arbitrary small DAGs,
//!    `WordMc<1>`, `WordMc<4>`, and `WordMc<8>` (serial or under any
//!    thread count) produce byte-identical scores and identical
//!    adaptive certificates.
//! 3. **Fusion properties** — `run_fused` over a batch of jobs
//!    returns, per job, exactly the bytes and certificate its solo
//!    execution returns.

use biorank_graph::generate::{self, WorkflowParams};
use biorank_graph::{NodeId, Prob, ProbGraph, QueryGraph};
use biorank_rank::{
    run_fused, AdaptiveRunner, Certificate, FusedJob, FusedOutcome, FusedPolicy, Ranker, WordMc,
};
use proptest::prelude::*;

fn p(v: f64) -> Prob {
    Prob::new(v).unwrap()
}

/// FNV-1a over the little-endian bit patterns of a score slice: any
/// single-bit drift anywhere in the vector changes the hash.
fn fnv(scores: &[f64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for s in scores {
        for byte in s.to_bits().to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

fn diamond() -> QueryGraph {
    let mut g = ProbGraph::new();
    let s = g.add_node(p(1.0));
    let a = g.add_node(p(0.7));
    let b = g.add_node(p(1.0));
    let t = g.add_node(p(1.0));
    g.add_edge(s, a, p(0.5)).unwrap();
    g.add_edge(s, b, p(0.45)).unwrap();
    g.add_edge(a, t, p(0.5)).unwrap();
    g.add_edge(b, t, p(0.55)).unwrap();
    QueryGraph::new(g, s, vec![t, a, b]).unwrap()
}

fn cyclic() -> QueryGraph {
    let mut g = ProbGraph::new();
    let s = g.add_node(p(1.0));
    let a = g.add_node(p(0.9));
    let b = g.add_node(p(1.0));
    let t = g.add_node(p(0.8));
    g.add_edge(s, a, p(0.8)).unwrap();
    g.add_edge(a, b, p(0.8)).unwrap();
    g.add_edge(b, a, p(0.7)).unwrap();
    g.add_edge(b, t, p(0.8)).unwrap();
    QueryGraph::new(g, s, vec![t]).unwrap()
}

fn goldens() -> Vec<(&'static str, QueryGraph)> {
    vec![
        ("diamond", diamond()),
        ("cyclic", cyclic()),
        (
            "workflow",
            generate::layered_workflow(&WorkflowParams::default(), 23),
        ),
        (
            "workflow_wide",
            generate::layered_workflow(
                &WorkflowParams {
                    answers: 24,
                    ..WorkflowParams::default()
                },
                8,
            ),
        ),
    ]
}

/// Score hashes recorded from the single-mask (pre-widening) engine.
const GOLDEN_FIXED: &[(&str, u32, u64, u64)] = &[
    ("diamond", 1000, 9, 0xe258017bfbdb6344),
    ("diamond", 100, 5, 0x7c9ca29db3e7747d),
    ("diamond", 10000, 1, 0x09492dfdb0e4fa08),
    ("cyclic", 1000, 9, 0x3c705af5e002bbda),
    ("cyclic", 100, 5, 0x204aac57cdf2ec93),
    ("cyclic", 10000, 1, 0x594b4784ca06aea1),
    ("workflow", 1000, 9, 0xa9140bcae0c0c876),
    ("workflow", 100, 5, 0xacfbbce295117829),
    ("workflow", 10000, 1, 0xb75aef36928b2852),
    ("workflow_wide", 1000, 9, 0xce525176be647b33),
    ("workflow_wide", 100, 5, 0x5f557f05c57a9115),
    ("workflow_wide", 10000, 1, 0x561825c0277c3632),
];

/// Adaptive runs recorded from the single-mask engine:
/// `(graph, epsilon, top_k, trials_used, certified, score hash)`,
/// all at ceiling 10 000, seed 7, delta 0.05.
const GOLDEN_ADAPTIVE: &[(&str, f64, Option<usize>, u32, bool, u64)] = &[
    ("diamond", 0.02, None, 1536, true, 0xda2d0d55a6708f20),
    ("diamond", 0.001, Some(1), 64, true, 0x805316aa7a7d8fd2),
    ("cyclic", 0.02, None, 64, true, 0x605133623991e9e1),
    ("cyclic", 0.001, Some(1), 64, true, 0x605133623991e9e1),
    ("workflow", 0.02, None, 2944, true, 0x97cff4343dd5745f),
    ("workflow", 0.001, Some(1), 128, true, 0xedc831fd8082032d),
    ("workflow_wide", 0.02, None, 4992, true, 0x4647ce71e8e815f1),
    (
        "workflow_wide",
        0.001,
        Some(1),
        1536,
        true,
        0xc5b8a77a511d11bd,
    ),
];

#[test]
fn golden_fixed_bits_survive_every_lane_width() {
    let graphs = goldens();
    for &(name, trials, seed, want) in GOLDEN_FIXED {
        let q = &graphs.iter().find(|(n, _)| *n == name).unwrap().1;
        for (width, got) in [
            (
                1,
                fnv(WordMc::new(trials, seed).score(q).unwrap().as_slice()),
            ),
            (
                4,
                fnv(WordMc::<4>::wide(trials, seed).score(q).unwrap().as_slice()),
            ),
            (
                8,
                fnv(WordMc::<8>::wide(trials, seed).score(q).unwrap().as_slice()),
            ),
        ] {
            assert_eq!(
                got, want,
                "{name} ({trials} trials, seed {seed}) drifted at width {width}"
            );
        }
    }
}

/// Runs one adaptive execution over any engine width (the closure
/// form would monomorphize to a single width).
fn adaptive_run<E: biorank_rank::Estimator>(
    engine: E,
    epsilon: f64,
    top_k: Option<usize>,
    q: &QueryGraph,
) -> biorank_rank::AdaptiveOutcome {
    let mut runner = AdaptiveRunner::new(engine, epsilon, 0.05);
    if let Some(k) = top_k {
        runner = runner.with_top_k(k);
    }
    runner.run(q).unwrap()
}

#[test]
fn golden_adaptive_certificates_survive_every_lane_width() {
    let graphs = goldens();
    for &(name, epsilon, top_k, trials_used, certified, want) in GOLDEN_ADAPTIVE {
        let q = &graphs.iter().find(|(n, _)| *n == name).unwrap().1;
        let check = |out: biorank_rank::AdaptiveOutcome, width: usize| {
            assert_eq!(
                (out.certificate.trials_used, out.certificate.certified),
                (trials_used, certified),
                "{name} (eps {epsilon}, top_k {top_k:?}) certificate drifted at width {width}"
            );
            assert_eq!(
                fnv(out.scores.as_slice()),
                want,
                "{name} (eps {epsilon}, top_k {top_k:?}) scores drifted at width {width}"
            );
        };
        check(adaptive_run(WordMc::new(10_000, 7), epsilon, top_k, q), 1);
        check(
            adaptive_run(WordMc::<4>::wide(10_000, 7), epsilon, top_k, q),
            4,
        );
        check(
            adaptive_run(WordMc::<8>::wide(10_000, 7), epsilon, top_k, q),
            8,
        );
    }
}

/// Small random DAG query graphs (edges oriented low → high id), the
/// same shape family as `prop_word.rs` but with multi-answer sets so
/// adaptive certification has gaps to check.
fn small_dag() -> impl Strategy<Value = QueryGraph> {
    (3usize..=8)
        .prop_flat_map(|n| {
            let probs = proptest::collection::vec(0u8..=8, n);
            let edges = proptest::collection::vec(((0usize..n), (0usize..n), 1u8..=8), 1..=14);
            (Just(n), probs, edges)
        })
        .prop_map(|(n, probs, edges)| {
            let mut g = ProbGraph::new();
            let ids: Vec<NodeId> = (0..n)
                .map(|i| {
                    let node_p = if i == 0 {
                        Prob::ONE
                    } else {
                        Prob::new(f64::from(probs[i]) / 8.0).unwrap()
                    };
                    g.add_node(node_p)
                })
                .collect();
            for (u, v, q) in edges {
                let (u, v) = (u.min(v), u.max(v));
                if u != v {
                    let _ = g.add_edge(ids[u], ids[v], Prob::new(f64::from(q) / 8.0).unwrap());
                }
            }
            // Every non-source node is an answer: rank vectors cover
            // the whole graph, maximizing demux surface.
            let answers = ids[1..].to_vec();
            QueryGraph::new(g, ids[0], answers).expect("source and answers are live")
        })
}

fn solo_fused(q: &QueryGraph, jobs: &[FusedJob]) -> Vec<FusedOutcome> {
    let mut results: Vec<Option<FusedOutcome>> = vec![None; jobs.len()];
    let initial = jobs
        .iter()
        .enumerate()
        .map(|(i, &j)| (i as u64, j))
        .collect();
    run_fused::<8>(
        q,
        initial,
        Vec::new,
        |id, res| results[id as usize] = Some(res.expect("valid job")),
        |_| {},
    );
    results.into_iter().map(|r| r.unwrap()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Lane width is invisible: widths 1, 4, and 8 — and every thread
    /// split of width 8 — produce byte-identical score vectors.
    #[test]
    fn lane_width_and_threads_never_change_score_bits(
        q in small_dag(),
        trials in (0usize..3).prop_map(|i| [64u32, 129, 1000][i]),
        seed in 0u64..=u64::MAX,
        threads in 1usize..=4,
    ) {
        let base = WordMc::new(trials, seed).score(&q).unwrap();
        let w4 = WordMc::<4>::wide(trials, seed).score(&q).unwrap();
        let w8 = WordMc::<8>::wide(trials, seed).score(&q).unwrap();
        let w8t = WordMc::<8>::wide(trials, seed).score_parallel(&q, threads).unwrap();
        prop_assert_eq!(fnv(w4.as_slice()), fnv(base.as_slice()), "width 4 drifted");
        prop_assert_eq!(fnv(w8.as_slice()), fnv(base.as_slice()), "width 8 drifted");
        prop_assert_eq!(
            fnv(w8t.as_slice()), fnv(base.as_slice()),
            "width 8 x {} threads drifted", threads
        );
    }

    /// Adaptive runs stop at the same batch with the same certificate
    /// and the same score bits at every lane width: the runner sees
    /// identical 64-trial step boundaries regardless of how many
    /// lanes a block propagates.
    #[test]
    fn lane_width_never_changes_adaptive_certificates(
        q in small_dag(),
        seed in 0u64..=u64::MAX,
        top_k in (0usize..3).prop_map(|i| [None, Some(1usize), Some(2)][i]),
    ) {
        let base = adaptive_run(WordMc::new(2048, seed), 0.05, top_k, &q);
        let wide = adaptive_run(WordMc::<8>::wide(2048, seed), 0.05, top_k, &q);
        prop_assert_eq!(wide.certificate, base.certificate);
        prop_assert_eq!(fnv(wide.scores.as_slice()), fnv(base.scores.as_slice()));
    }

    /// A fused sweep is invisible per job: each job's scores,
    /// trials-used, and certificate equal its solo execution's, even
    /// though the jobs shared propagation blocks.
    #[test]
    fn fused_jobs_match_solo_runs_bit_for_bit(
        q in small_dag(),
        seeds in proptest::collection::vec(0u64..=u64::MAX, 2..=5),
    ) {
        let jobs: Vec<FusedJob> = seeds
            .iter()
            .enumerate()
            .map(|(i, &seed)| FusedJob {
                seed,
                trials: 64 + 97 * i as u32,
                policy: if i % 2 == 0 {
                    FusedPolicy::Fixed
                } else {
                    FusedPolicy::Adaptive { epsilon: 0.05, delta: 0.05, top_k: None }
                },
                deadline: None,
            })
            .collect();
        let fused = solo_fused(&q, &jobs);
        for (job, out) in jobs.iter().zip(&fused) {
            match job.policy {
                FusedPolicy::Fixed => {
                    let solo = WordMc::new(job.trials, job.seed).score(&q).unwrap();
                    prop_assert_eq!(
                        fnv(out.scores.as_slice()),
                        fnv(solo.as_slice()),
                        "fixed job (seed {}) drifted under fusion", job.seed
                    );
                    prop_assert_eq!(out.trials_used, job.trials);
                    prop_assert_eq!(out.certificate, None::<Certificate>);
                }
                FusedPolicy::Adaptive { epsilon, delta, top_k } => {
                    let mut runner = AdaptiveRunner::new(
                        WordMc::new(job.trials, job.seed), epsilon, delta,
                    );
                    if let Some(k) = top_k {
                        runner = runner.with_top_k(k);
                    }
                    let solo = runner.run(&q).unwrap();
                    prop_assert_eq!(
                        fnv(out.scores.as_slice()),
                        fnv(solo.scores.as_slice()),
                        "adaptive job (seed {}) drifted under fusion", job.seed
                    );
                    prop_assert_eq!(out.certificate, Some(solo.certificate));
                    prop_assert_eq!(out.trials_used, solo.certificate.trials_used);
                }
            }
        }
    }
}
