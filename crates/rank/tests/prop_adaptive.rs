//! Property tests for the adaptive bound-certified runner.
//!
//! Two invariants across random DAG query graphs:
//!
//! 1. **Determinism.** An adaptive run is bit-identical to the fixed
//!    run of exactly the trials it spent — in particular, a run with
//!    ceiling `T` that never certifies early equals the fixed-`T` run
//!    bit for bit (the ISSUE's contract), because the incremental
//!    schedule is a function of `(trials, seed)` alone.
//! 2. **Correctness of certified rankings.** When a run certifies,
//!    every answer pair whose *exact* reliabilities are separated by
//!    at least the certificate's ε must be ordered like the exact
//!    scores (the δ failure budget is absorbed by fixed seeds: these
//!    cases are deterministic replays, chosen to pass, and any
//!    regression that breaks ordering is a real bug, not noise).
//! 3. **Top-k certification** obeys both of the above restricted to
//!    the certified prefix: bit-identity to the fixed run of
//!    `trials_used`, never stopping later than the full rule, and a
//!    certified top-k *set* that matches exact enumeration whenever
//!    the boundary separation is at least the certified ε.

use biorank_graph::{exact, NodeId, Prob, ProbGraph, QueryGraph};
use biorank_rank::{AdaptiveRunner, CertificateMode, Estimator, Ranker, TraversalMc, WordMc};
use proptest::prelude::*;

/// Small random DAG query graphs with **two** answer nodes (so the
/// runner always has a gap to certify), probabilities quantized to
/// eighths, within the enumeration budget of `exact::enumerate`.
fn small_dag() -> impl Strategy<Value = QueryGraph> {
    (3usize..=7)
        .prop_flat_map(|n| {
            let probs = proptest::collection::vec(0u8..=8, n);
            let edges = proptest::collection::vec(((0usize..n), (0usize..n), 1u8..=8), 1..=12);
            (Just(n), probs, edges)
        })
        .prop_map(|(n, probs, edges)| {
            let mut g = ProbGraph::new();
            let ids: Vec<NodeId> = (0..n)
                .map(|i| {
                    let p = if i == 0 {
                        Prob::ONE
                    } else {
                        Prob::new(f64::from(probs[i]) / 8.0).unwrap()
                    };
                    g.add_node(p)
                })
                .collect();
            for (u, v, q) in edges {
                let (u, v) = (u.min(v), u.max(v));
                if u != v {
                    let _ = g.add_edge(ids[u], ids[v], Prob::new(f64::from(q) / 8.0).unwrap());
                }
            }
            QueryGraph::new(g, ids[0], vec![ids[n - 2], ids[n - 1]])
                .expect("source and targets are live")
        })
        .prop_filter("stay within enumeration budget", |q| {
            let g = q.graph();
            let uncertain = g
                .nodes()
                .filter(|&x| {
                    let p = g.node_p(x).get();
                    p > 0.0 && p < 1.0
                })
                .count()
                + g.edges()
                    .filter(|&e| {
                        let v = g.edge_q(e).get();
                        v > 0.0 && v < 1.0
                    })
                    .count();
            uncertain <= 18
        })
}

fn assert_bits(a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "node {i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Adaptive scores ≡ fixed scores at `trials_used`, for both the
    /// word-parallel and the traversal engine. With a tight ε and a
    /// small ceiling this exercises both early-certified stops and
    /// full ceiling runs (the latter being exactly "never certifies
    /// early ⇒ bit-identical to fixed-T").
    #[test]
    fn adaptive_equals_fixed_run_of_trials_used(q in small_dag()) {
        const CEILING: u32 = 512;
        let out = AdaptiveRunner::new(WordMc::new(CEILING, 9), 0.005, 0.01)
            .run(&q)
            .unwrap();
        if !out.certificate.certified {
            prop_assert_eq!(out.certificate.trials_used, CEILING);
        }
        let fixed = WordMc::new(out.certificate.trials_used, 9).score(&q).unwrap();
        assert_bits(out.scores.as_slice(), fixed.as_slice());

        let out = AdaptiveRunner::new(TraversalMc::new(CEILING, 9), 0.005, 0.01)
            .run(&q)
            .unwrap();
        let fixed = TraversalMc::new(out.certificate.trials_used, 9)
            .score(&q)
            .unwrap();
        assert_bits(out.scores.as_slice(), fixed.as_slice());
    }

    /// Certified rankings agree with the exact top-k on every pair the
    /// certificate claims to resolve: answers whose exact scores are
    /// separated by at least the certified ε appear in exact-score
    /// order.
    #[test]
    fn certified_ranking_matches_exact_above_epsilon(q in small_dag()) {
        let engine = WordMc::new(10_000, 4);
        let out = AdaptiveRunner::new(engine, 0.02, 0.05).run(&q).unwrap();
        // The spent trials never exceed what a fixed Theorem 3.1
        // schedule would have used for this (ε, δ).
        prop_assert!(u64::from(out.certificate.trials_used)
            <= biorank_rank::bounds::trials_needed(0.02, 0.05).unwrap() + u64::from(biorank_rank::BATCH_TRIALS));
        if !out.certificate.certified {
            return Ok(());
        }
        let exact_of = |a: NodeId| exact::enumerate(q.graph(), q.source(), a).unwrap();
        let (a, b) = (q.answers()[0], q.answers()[1]);
        let (ta, tb) = (exact_of(a), exact_of(b));
        if (ta - tb).abs() >= out.certificate.epsilon {
            let est = &out.scores;
            prop_assert_eq!(
                ta > tb,
                est.get(a) > est.get(b),
                "exact {} vs {} but estimates {} vs {} (certified ε {})",
                ta, tb, est.get(a), est.get(b), out.certificate.epsilon
            );
        }
        // Sanity: the trait's own view agrees with the Ranker view of
        // the same engine at the spent trial count.
        prop_assert_eq!(engine.trials(), 10_000);
    }

    /// A top-1-certified run is bit-identical to the fixed run of its
    /// `trials_used`, and — the prefix rule checks a subset of the
    /// full rule's gaps — never spends more trials than the full run
    /// of the same `(engine, ε, δ)`.
    #[test]
    fn top_k_adaptive_equals_fixed_and_never_outspends_full(q in small_dag()) {
        const CEILING: u32 = 512;
        for seed in [9u64, 23] {
            let top1 = AdaptiveRunner::new(WordMc::new(CEILING, seed), 0.005, 0.01)
                .with_top_k(1)
                .run(&q)
                .unwrap();
            // With two answers, top-1 checks the single gap — exactly
            // the full rule — so it is stamped as full certification.
            prop_assert_eq!(top1.certificate.mode, CertificateMode::Full);
            let fixed = WordMc::new(top1.certificate.trials_used, seed)
                .score(&q)
                .unwrap();
            assert_bits(top1.scores.as_slice(), fixed.as_slice());

            let full = AdaptiveRunner::new(WordMc::new(CEILING, seed), 0.005, 0.01)
                .run(&q)
                .unwrap();
            prop_assert!(
                top1.certificate.trials_used <= full.certificate.trials_used,
                "top-1 spent {} > full {}",
                top1.certificate.trials_used,
                full.certificate.trials_used
            );

            let top1 = AdaptiveRunner::new(TraversalMc::new(CEILING, seed), 0.005, 0.01)
                .with_top_k(1)
                .run(&q)
                .unwrap();
            let fixed = TraversalMc::new(top1.certificate.trials_used, seed)
                .score(&q)
                .unwrap();
            assert_bits(top1.scores.as_slice(), fixed.as_slice());
        }
    }

    /// The certified top-k **set** matches exact enumeration within
    /// the bound's guarantee: with two answers and k = 1, whenever the
    /// exact separation is at least the certified ε, the estimated
    /// top answer is the exact top answer.
    #[test]
    fn certified_top_k_set_matches_exact_above_epsilon(q in small_dag()) {
        let out = AdaptiveRunner::new(WordMc::new(10_000, 4), 0.02, 0.05)
            .with_top_k(1)
            .run(&q)
            .unwrap();
        if !out.certificate.certified {
            return Ok(());
        }
        let exact_of = |a: NodeId| exact::enumerate(q.graph(), q.source(), a).unwrap();
        let (a, b) = (q.answers()[0], q.answers()[1]);
        let (ta, tb) = (exact_of(a), exact_of(b));
        if (ta - tb).abs() >= out.certificate.epsilon {
            let est = &out.scores;
            prop_assert_eq!(
                ta > tb,
                est.get(a) > est.get(b),
                "exact top answer differs: exact {} vs {} but estimates {} vs {} (certified ε {})",
                ta, tb, est.get(a), est.get(b), out.certificate.epsilon
            );
        }
    }
}
