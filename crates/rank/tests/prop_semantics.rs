//! Property tests for the cross-semantics claims of paper §3.
//!
//! * Proposition 3.1: on trees rooted at the source, reliability and
//!   propagation coincide.
//! * "In general, the propagation scores will always be bigger or equal
//!   to reliability scores" (§3.2).
//! * Monte Carlo estimates converge to the exact reliability.
//! * Closed-form / factoring / enumeration agree wherever they all apply.

use biorank_graph::{exact, generate, Prob, QueryGraph};
use biorank_rank::{
    ClosedReliability, Diffusion, InEdge, PathCount, Propagation, Ranker, TraversalMc,
};
use proptest::prelude::*;

fn tree_query(seed: u64, n: usize) -> QueryGraph {
    let (g, root) = generate::random_tree(n, seed, (0.2, 1.0), (0.2, 1.0));
    let answers: Vec<_> = g.nodes().filter(|&x| x != root).collect();
    QueryGraph::new(g, root, answers).expect("tree query")
}

fn workflow_query(seed: u64) -> QueryGraph {
    let params = generate::WorkflowParams {
        layers: 2,
        width: 4,
        answers: 3,
        density: 0.4,
        node_prob: (0.3, 1.0),
        edge_prob: (0.3, 1.0),
    };
    generate::layered_workflow(&params, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Proposition 3.1: reliability == propagation on trees.
    #[test]
    fn prop31_tree_reliability_equals_propagation(seed in 0u64..500, n in 2usize..20) {
        let q = tree_query(seed, n);
        let prop = Propagation::auto().score(&q).unwrap();
        let exact_rel = ClosedReliability::default().score(&q).unwrap();
        for &a in q.answers() {
            prop_assert!(
                (prop.get(a) - exact_rel.get(a)).abs() < 1e-9,
                "node {a}: propagation {} vs reliability {}",
                prop.get(a),
                exact_rel.get(a)
            );
        }
    }

    /// Propagation dominates reliability on arbitrary workflow DAGs.
    #[test]
    fn propagation_dominates_reliability(seed in 0u64..500) {
        let q = workflow_query(seed);
        let prop = Propagation::auto().score(&q).unwrap();
        let rel = ClosedReliability::default().score(&q).unwrap();
        for &a in q.answers() {
            prop_assert!(
                prop.get(a) >= rel.get(a) - 1e-9,
                "node {a}: propagation {} < reliability {}",
                prop.get(a),
                rel.get(a)
            );
        }
    }

    /// All five semantics yield scores in range and defined for every
    /// answer; probabilistic scores stay within [0, 1].
    #[test]
    fn scores_are_well_formed(seed in 0u64..500) {
        let q = workflow_query(seed);
        let rankers: Vec<Box<dyn Ranker + Send + Sync>> = vec![
            Box::new(TraversalMc::new(200, seed)),
            Box::new(Propagation::auto()),
            Box::new(Diffusion::auto()),
            Box::new(InEdge),
            Box::new(PathCount),
        ];
        for r in rankers {
            let s = r.score(&q).unwrap();
            for &a in q.answers() {
                let v = s.get(a);
                prop_assert!(v.is_finite(), "{}: non-finite score", r.name());
                prop_assert!(v >= 0.0, "{}: negative score", r.name());
                if matches!(r.name(), "Rel(MC)" | "Prop" | "Diff") {
                    prop_assert!(v <= 1.0 + 1e-9, "{}: score {v} > 1", r.name());
                }
            }
        }
    }

    /// The closed/factoring reliability evaluator agrees with brute
    /// force enumeration on small workflows.
    #[test]
    fn closed_reliability_is_exact(seed in 0u64..200) {
        let q = workflow_query(seed);
        let closed = ClosedReliability::default().score(&q).unwrap();
        for &a in q.answers() {
            // Keep enumeration tractable: only validate per-target
            // subgraphs with few uncertain elements.
            let st = q.single_target(a).unwrap();
            let Some(target) = st.target else { continue };
            let uncertain = st
                .graph
                .nodes()
                .filter(|&x| {
                    let p = st.graph.node_p(x).get();
                    p > 0.0 && p < 1.0
                })
                .count()
                + st.graph
                    .edges()
                    .filter(|&e| {
                        let v = st.graph.edge_q(e).get();
                        v > 0.0 && v < 1.0
                    })
                    .count();
            if uncertain > 16 {
                continue;
            }
            let truth = match exact::enumerate(&st.graph, st.source, target) {
                Ok(r) => r,
                Err(_) => continue,
            };
            prop_assert!(
                (closed.get(a) - truth).abs() < 1e-9,
                "node {a}: closed {} vs enumerated {truth}",
                closed.get(a)
            );
        }
    }

    /// Diffusion never exceeds the total outflow available from the
    /// source (sanity: bounded by 1).
    #[test]
    fn diffusion_bounded(seed in 0u64..200) {
        let q = workflow_query(seed);
        let d = Diffusion::auto().score(&q).unwrap();
        for &a in q.answers() {
            prop_assert!(d.get(a) <= 1.0 + 1e-9);
        }
    }

    /// Raising every probability to 1 makes reliability equal plain
    /// reachability (0/1) — and MC must then be exact even with few
    /// trials.
    #[test]
    fn certain_graph_reliability_is_reachability(seed in 0u64..200) {
        let mut q = workflow_query(seed);
        q.graph_mut().map_node_probs(|_, _| Prob::ONE);
        q.graph_mut().map_edge_probs(|_, _| Prob::ONE);
        let mc = TraversalMc::new(3, seed).score(&q).unwrap();
        let reach = biorank_graph::reach::reachable_from(q.graph(), q.source());
        for &a in q.answers() {
            let expect = if reach[a.index()] { 1.0 } else { 0.0 };
            prop_assert!((mc.get(a) - expect).abs() < 1e-12);
        }
    }
}
