//! The mediator: recursive link expansion over registered sources.

use std::collections::BTreeMap;

use biorank_graph::{NodeId, Prob, ProbGraph, QueryGraph};
use biorank_schema::Schema;
use biorank_sources::{Record, Registry};

use crate::{Error, ExploratoryQuery};

/// Integration statistics for one query execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IntegrationStats {
    /// Records fetched from sources (including keyword matches).
    pub records_fetched: usize,
    /// Links followed (before dangling-target filtering).
    pub links_followed: usize,
    /// Links whose target record did not resolve.
    pub dangling_links: usize,
    /// Links whose relationship is not part of the mediated schema
    /// (sources may expose more than the mediator integrates).
    pub unmapped_links: usize,
    /// Nodes integrated before pruning to the relevant subgraph.
    pub nodes_raw: usize,
    /// Edges integrated before pruning.
    pub edges_raw: usize,
    /// Nodes in the final (pruned) query graph.
    pub nodes: usize,
    /// Edges in the final (pruned) query graph.
    pub edges: usize,
}

/// The result of executing an exploratory query.
#[derive(Clone, Debug)]
pub struct IntegrationResult {
    /// The probabilistic query graph (source node + answer set).
    pub query: QueryGraph,
    /// Provenance: the source record behind each node (the query node
    /// has no record).
    pub records: BTreeMap<NodeId, Record>,
    /// Execution statistics.
    pub stats: IntegrationStats,
}

impl IntegrationResult {
    /// The record key of an answer node (e.g. the GO term string).
    pub fn answer_key(&self, n: NodeId) -> Option<&str> {
        self.records.get(&n).map(|r| r.key.as_str())
    }

    /// The display label of a node.
    pub fn label(&self, n: NodeId) -> &str {
        self.records
            .get(&n)
            .map(|r| r.label.as_str())
            .unwrap_or("query")
    }
}

/// The mediator: a mediated schema plus a source registry.
pub struct Mediator {
    schema: Schema,
    registry: Registry,
    /// Hard cap on integrated nodes, guarding against runaway link
    /// structures in misconfigured sources.
    pub max_nodes: usize,
}

impl Mediator {
    /// Creates a mediator over a schema and registry.
    pub fn new(schema: Schema, registry: Registry) -> Self {
        Mediator {
            schema,
            registry,
            max_nodes: 100_000,
        }
    }

    /// The mediated schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Executes an exploratory query, producing the probabilistic query
    /// graph of Definition 2.3.
    pub fn execute(&self, q: &ExploratoryQuery) -> Result<IntegrationResult, Error> {
        let input_es = self
            .schema
            .entity_set_by_name(&q.input)
            .ok_or_else(|| Error::UnknownEntitySet(q.input.clone()))?;
        for out in &q.outputs {
            if self.schema.entity_set_by_name(out).is_none() {
                return Err(Error::UnknownEntitySet(out.clone()));
            }
        }

        let mut g = ProbGraph::new();
        let mut records: BTreeMap<NodeId, Record> = BTreeMap::new();
        let mut node_of: BTreeMap<(String, String), NodeId> = BTreeMap::new();
        let mut stats = IntegrationStats::default();

        // The synthetic query node: always present (p = 1).
        let source = g.add_labeled_node(Prob::ONE, format!("query:{}", q.value));

        // Keyword matching against the input entity set.
        let matches = self.registry.search(&q.input, &q.value);
        if matches.is_empty() {
            return Err(Error::NoMatches {
                entity_set: q.input.clone(),
                value: q.value.clone(),
            });
        }
        let input_ps = self.schema.entity_set(input_es).ps;
        let mut worklist: Vec<NodeId> = Vec::new();
        for rec in matches {
            stats.records_fetched += 1;
            let node = g.add_labeled_node(input_ps.and(rec.pr), rec.label.clone());
            node_of.insert((rec.entity_set.clone(), rec.key.clone()), node);
            records.insert(node, rec);
            // The keyword match itself is certain.
            g.add_edge(source, node, Prob::ONE)?;
            worklist.push(node);
        }

        // Recursive expansion: follow all links breadth-first.
        let mut cursor = 0usize;
        while cursor < worklist.len() {
            let from = worklist[cursor];
            cursor += 1;
            let (from_es, from_key) = {
                let r = &records[&from];
                (r.entity_set.clone(), r.key.clone())
            };
            for link in self.registry.links_from(&from_es, &from_key) {
                stats.links_followed += 1;
                // The mediated schema defines the integration scope:
                // relationships the schema does not declare are ignored.
                let Some(rel_id) = self.schema.relationship_by_name(&link.relationship) else {
                    stats.unmapped_links += 1;
                    continue;
                };
                let qs = self.schema.rel(rel_id).qs;
                let node_key = (link.to_entity_set.clone(), link.to_key.clone());
                let to = match node_of.get(&node_key) {
                    Some(&n) => n,
                    None => {
                        let Some(rec) = self.registry.get(&link.to_entity_set, &link.to_key) else {
                            stats.dangling_links += 1;
                            continue;
                        };
                        stats.records_fetched += 1;
                        if g.node_count() >= self.max_nodes {
                            return Err(Error::BudgetExceeded {
                                max_nodes: self.max_nodes,
                            });
                        }
                        let es_ps = self
                            .schema
                            .entity_set_by_name(&rec.entity_set)
                            .map(|id| self.schema.entity_set(id).ps)
                            .ok_or_else(|| Error::UnknownEntitySet(rec.entity_set.clone()))?;
                        let node = g.add_labeled_node(es_ps.and(rec.pr), rec.label.clone());
                        node_of.insert(node_key, node);
                        records.insert(node, rec);
                        worklist.push(node);
                        node
                    }
                };
                if to != from {
                    g.add_edge(from, to, qs.and(link.qr))?;
                }
            }
        }

        // Answer set: reached records of the output entity sets, in
        // integration order.
        let answers: Vec<NodeId> = worklist
            .iter()
            .copied()
            .filter(|n| q.is_output(&records[n].entity_set))
            .collect();
        if answers.is_empty() {
            return Err(Error::EmptyAnswerSet);
        }

        stats.nodes_raw = g.node_count();
        stats.edges_raw = g.edge_count();
        let mut query = QueryGraph::new(g, source, answers)?;
        query.prune();
        stats.nodes = query.graph().node_count();
        stats.edges = query.graph().edge_count();
        records.retain(|n, _| query.graph().node_alive(*n));
        Ok(IntegrationResult {
            query,
            records,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biorank_schema::biorank_schema_with_ontology;
    use biorank_sources::{World, WorldParams};

    fn mediator() -> Mediator {
        let world = World::generate(WorldParams::default());
        Mediator::new(biorank_schema_with_ontology().schema, world.registry())
    }

    #[test]
    fn abcc8_query_returns_97_functions() {
        let m = mediator();
        let r = m
            .execute(&ExploratoryQuery::protein_functions("ABCC8"))
            .unwrap();
        assert_eq!(r.query.answers().len(), 97, "Table 1: ABCC8 → 97 functions");
        // All answers are AmiGO records with GO keys.
        for &a in r.query.answers() {
            let rec = &r.records[&a];
            assert_eq!(rec.entity_set, "AmiGO");
            assert!(rec.key.starts_with("GO:"), "key {}", rec.key);
        }
    }

    #[test]
    fn all_table1_counts_reproduce() {
        let m = mediator();
        for row in biorank_sources::paper_data::TABLE1 {
            let r = m
                .execute(&ExploratoryQuery::protein_functions(row.protein))
                .unwrap();
            assert_eq!(
                r.query.answers().len(),
                row.biorank_functions,
                "{}",
                row.protein
            );
        }
    }

    #[test]
    fn hypothetical_protein_answer_sizes_reproduce() {
        let m = mediator();
        for row in biorank_sources::paper_data::TABLE3 {
            let r = m
                .execute(&ExploratoryQuery::protein_functions(row.protein))
                .unwrap();
            assert_eq!(
                r.query.answers().len(),
                row.answer_set_size,
                "{}",
                row.protein
            );
        }
    }

    #[test]
    fn query_graph_is_a_dag_with_query_source() {
        let m = mediator();
        let r = m
            .execute(&ExploratoryQuery::protein_functions("CFTR"))
            .unwrap();
        assert!(biorank_graph::topo::is_dag(r.query.graph()));
        assert_eq!(r.label(r.query.source()), "query");
        assert_eq!(r.query.graph().node_p(r.query.source()).get(), 1.0);
        assert!(r.stats.nodes > 50, "stats: {:?}", r.stats);
        assert_eq!(r.stats.nodes, r.query.graph().node_count());
    }

    #[test]
    fn unknown_protein_is_no_matches() {
        let m = mediator();
        let err = m
            .execute(&ExploratoryQuery::protein_functions("NOT_A_PROTEIN"))
            .unwrap_err();
        assert!(matches!(err, Error::NoMatches { .. }));
    }

    #[test]
    fn unknown_entity_sets_are_rejected() {
        let m = mediator();
        let err = m
            .execute(&ExploratoryQuery::new("Nope", "x", "v", ["AmiGO"]))
            .unwrap_err();
        assert!(matches!(err, Error::UnknownEntitySet(_)));
        let err = m
            .execute(&ExploratoryQuery::new(
                "EntrezProtein",
                "name",
                "ABCC8",
                ["Nope"],
            ))
            .unwrap_err();
        assert!(matches!(err, Error::UnknownEntitySet(_)));
    }

    #[test]
    fn execution_is_deterministic() {
        let m = mediator();
        let q = ExploratoryQuery::protein_functions("EYA1");
        let a = m.execute(&q).unwrap();
        let b = m.execute(&q).unwrap();
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.query.answers().len(), b.query.answers().len());
    }

    #[test]
    fn node_budget_is_enforced() {
        let world = World::generate(WorldParams::default());
        let mut m = Mediator::new(biorank_schema_with_ontology().schema, world.registry());
        m.max_nodes = 10;
        let err = m
            .execute(&ExploratoryQuery::protein_functions("ABCC8"))
            .unwrap_err();
        assert!(matches!(err, Error::BudgetExceeded { .. }));
    }
}
