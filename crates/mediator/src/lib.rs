//! # biorank-mediator
//!
//! Exploratory-query execution for the BioRank reproduction
//! ("Integrating and Ranking Uncertain Scientific Data", Detwiler et
//! al., ICDE 2009, §2).
//!
//! An exploratory query `(P.attr = "value", {P1, …, Pn})` selects
//! records of an input entity set by keyword, then "follows all links
//! recursively to find all reachable records and returns those entities
//! that are in P1, …, Pn". The mediator materializes this walk as a
//! *probabilistic query graph*: each integrated record becomes a node
//! with `p = ps·pr`, each relationship instance an edge with
//! `q = qs·qr`, a synthetic query node `s` fans out to the keyword
//! matches, and the answer set `A` holds the reached output records.
//!
//! ```
//! use biorank_mediator::{ExploratoryQuery, Mediator};
//! use biorank_schema::biorank_schema_with_ontology;
//! use biorank_sources::{World, WorldParams};
//!
//! let world = World::generate(WorldParams::default());
//! let mediator = Mediator::new(biorank_schema_with_ontology().schema, world.registry());
//! let result = mediator
//!     .execute(&ExploratoryQuery::protein_functions("GALT"))
//!     .unwrap();
//! assert_eq!(result.query.answers().len(), 15); // Table 1: GALT → 15
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod mediate;
mod query;

pub use mediate::{IntegrationResult, IntegrationStats, Mediator};
pub use query::ExploratoryQuery;

use std::fmt;

/// Errors produced during integration.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The query references an entity set absent from the mediated
    /// schema.
    UnknownEntitySet(String),
    /// A source emitted a link whose relationship is not in the schema.
    UnknownRelationship(String),
    /// The keyword matched nothing in the input entity set.
    NoMatches {
        /// Input entity set.
        entity_set: String,
        /// Search keyword.
        value: String,
    },
    /// The walk found no records of any output entity set.
    EmptyAnswerSet,
    /// Node budget exceeded during expansion (runaway link structure).
    BudgetExceeded {
        /// The configured maximum node count.
        max_nodes: usize,
    },
    /// Underlying graph error.
    Graph(biorank_graph::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownEntitySet(n) => write!(f, "entity set {n:?} not in mediated schema"),
            Error::UnknownRelationship(n) => {
                write!(f, "relationship {n:?} not in mediated schema")
            }
            Error::NoMatches { entity_set, value } => {
                write!(f, "no records in {entity_set} match {value:?}")
            }
            Error::EmptyAnswerSet => write!(f, "query reached no output records"),
            Error::BudgetExceeded { max_nodes } => {
                write!(f, "integration exceeded the {max_nodes}-node budget")
            }
            Error::Graph(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<biorank_graph::Error> for Error {
    fn from(e: biorank_graph::Error) -> Self {
        Error::Graph(e)
    }
}
