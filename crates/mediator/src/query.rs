//! The exploratory query type (paper Definition 2.2).

use serde::{Deserialize, Serialize};

/// An exploratory query `(P.attr = "value", {P1, …, Pn})`.
///
/// BioRank's query interface replaced conjunctive queries because
/// "biologists were not using such an interface effectively" — they
/// needed exploration, not retrieval (§2).
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ExploratoryQuery {
    /// The input entity set `P`.
    pub input: String,
    /// The matched attribute (`P.attr`); informational — sources match
    /// on their search attribute.
    pub attribute: String,
    /// The keyword value.
    pub value: String,
    /// The output entity sets `{P1, …, Pn}`.
    pub outputs: Vec<String>,
}

impl ExploratoryQuery {
    /// Builds a query.
    pub fn new(
        input: impl Into<String>,
        attribute: impl Into<String>,
        value: impl Into<String>,
        outputs: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        ExploratoryQuery {
            input: input.into(),
            attribute: attribute.into(),
            value: value.into(),
            outputs: outputs.into_iter().map(Into::into).collect(),
        }
    }

    /// The paper's running example:
    /// `(EntrezProtein.name = "<protein>", AmiGO)`.
    pub fn protein_functions(protein: &str) -> Self {
        ExploratoryQuery::new("EntrezProtein", "name", protein, ["AmiGO"])
    }

    /// `true` when `entity_set` is one of the query's outputs.
    pub fn is_output(&self, entity_set: &str) -> bool {
        self.outputs.iter().any(|o| o == entity_set)
    }
}

impl std::fmt::Display for ExploratoryQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "({}.{} = {:?}, {{{}}})",
            self.input,
            self.attribute,
            self.value,
            self.outputs.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protein_functions_matches_paper_example() {
        let q = ExploratoryQuery::protein_functions("ABCC8");
        assert_eq!(q.input, "EntrezProtein");
        assert_eq!(q.attribute, "name");
        assert_eq!(q.value, "ABCC8");
        assert!(q.is_output("AmiGO"));
        assert!(!q.is_output("Pfam"));
        assert_eq!(q.to_string(), "(EntrezProtein.name = \"ABCC8\", {AmiGO})");
    }

    #[test]
    fn multiple_outputs() {
        let q = ExploratoryQuery::new("A", "x", "v", ["B", "C"]);
        assert!(q.is_output("B") && q.is_output("C"));
    }
}
