//! # biorank-schema
//!
//! The mediated Entity-Relationship schema layer of the BioRank
//! reproduction ("Integrating and Ranking Uncertain Scientific Data",
//! Detwiler et al., ICDE 2009):
//!
//! * [`Schema`] / [`EntitySetDef`] / [`RelationshipDef`] — the E/R model
//!   of paper §2, with set-level confidences `ps` and `qs`.
//! * [`Cardinality`] — relationship types `[1:1]`, `[1:n]`, `[n:1]`,
//!   `[m:n]` and their composition algebra (§3.1(3)).
//! * [`reducible`] — the Theorem 3.2 reducibility checker, including the
//!   per-answer-node refinement used in the efficiency study.
//! * [`metrics`] — the uncertainty-to-probability transformation
//!   functions: status-code and evidence-code tables and the e-value
//!   mapping `qr = −(1/300)·ln(e)`.
//! * [`catalog`] — the 11-source table and the Fig. 1 query schema.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod cardinality;
pub mod catalog;
mod er;
pub mod metrics;
pub mod reducible;

pub use cardinality::{Cardinality, Composition};
pub use catalog::{
    biorank_schema, biorank_schema_full, biorank_schema_with_ontology, source_catalog,
    BiorankSchema, SourceDecl,
};
pub use er::{EntitySetDef, EntitySetId, RelationshipDef, RelationshipId, Schema};
pub use metrics::{evalue_to_prob, prob_to_evalue, EvidenceCode, StatusCode};
pub use reducible::{check_query_reducible, check_reducible, ComposeHints, Reducibility, Step};

use std::fmt;

/// Errors produced by schema construction.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// An entity set or relationship name was declared twice.
    DuplicateName(String),
    /// A relationship referenced an entity set that does not exist.
    UnknownEntitySet(String),
    /// An invalid probability value (delegated from the graph layer).
    Graph(biorank_graph::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DuplicateName(n) => write!(f, "duplicate schema name {n:?}"),
            Error::UnknownEntitySet(n) => write!(f, "unknown entity set {n}"),
            Error::Graph(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<biorank_graph::Error> for Error {
    fn from(e: biorank_graph::Error) -> Self {
        Error::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        let e = Error::DuplicateName("X".into());
        assert!(e.to_string().contains('X'));
        let e: Error = biorank_graph::Error::EmptyAnswerSet.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
