//! The BioRank source catalog and the Fig. 1 mediated query schema.
//!
//! The paper's system "currently connects to the following 11 data
//! sources" (§2); [`source_catalog`] reproduces that table verbatim
//! (names plus the number of entity sets `#E` and relationships `#R`
//! each exposes). [`biorank_schema`] builds the subset of the mediated
//! E/R schema relevant to the running example query
//! `(EntrezProtein.name = "ABCC8", AmiGO)` shown in Fig. 1, with the
//! cardinalities annotated there and the set-level confidences `ps`/`qs`
//! used throughout the evaluation.

use serde::{Deserialize, Serialize};

use crate::{Cardinality, ComposeHints, EntitySetId, RelationshipId, Schema};

/// One row of the paper's source table.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceDecl {
    /// Source name as printed in the paper.
    pub name: &'static str,
    /// Number of entity sets the source exposes (`#E`).
    pub entity_sets: usize,
    /// Number of relationships it exposes (`#R`).
    pub relationships: usize,
}

/// The 11 data sources of paper §2, in table order.
pub fn source_catalog() -> Vec<SourceDecl> {
    vec![
        SourceDecl {
            name: "AmiGO",
            entity_sets: 1,
            relationships: 4,
        },
        SourceDecl {
            name: "NCBIBlast",
            entity_sets: 2,
            relationships: 3,
        },
        SourceDecl {
            name: "CDD",
            entity_sets: 3,
            relationships: 1,
        },
        SourceDecl {
            name: "EntrezGene",
            entity_sets: 2,
            relationships: 3,
        },
        SourceDecl {
            name: "EntrezProtein",
            entity_sets: 1,
            relationships: 11,
        },
        SourceDecl {
            name: "PDB",
            entity_sets: 1,
            relationships: 0,
        },
        SourceDecl {
            name: "Pfam",
            entity_sets: 2,
            relationships: 2,
        },
        SourceDecl {
            name: "PIRSF",
            entity_sets: 2,
            relationships: 2,
        },
        SourceDecl {
            name: "UniProt",
            entity_sets: 2,
            relationships: 2,
        },
        SourceDecl {
            name: "SuperFamily",
            entity_sets: 3,
            relationships: 1,
        },
        SourceDecl {
            name: "TIGRFAM",
            entity_sets: 2,
            relationships: 2,
        },
    ]
}

/// Handles into the Fig. 1 query schema produced by [`biorank_schema`].
#[derive(Clone, Debug)]
pub struct BiorankSchema {
    /// The mediated schema.
    pub schema: Schema,
    /// Query entity set (the synthetic node holding the keyword match).
    pub query: EntitySetId,
    /// `EntrezProtein(name, seq)` — the input entity set of Fig. 1.
    pub entrez_protein: EntitySetId,
    /// `Pfam` family records.
    pub pfam: EntitySetId,
    /// `TIGRFAM` family records.
    pub tigrfam: EntitySetId,
    /// `NCBIBlast` hit records (the reified `NCBIBlast1`/`NCBIBlast2`
    /// split of the ternary relationship, §2).
    pub ncbi_blast: EntitySetId,
    /// `EntrezGene(idEG, StatusCode, idGO)`.
    pub entrez_gene: EntitySetId,
    /// `AmiGO` GO-term records — the output entity set.
    pub amigo: EntitySetId,
    /// All relationship ids, in creation order.
    pub relationships: Vec<RelationshipId>,
    /// Domain-knowledge composition hints for Theorem 3.2.
    pub hints: ComposeHints,
}

/// Builds the Fig. 1 mediated query schema.
///
/// Topology (arrows are relationship directions; labels cardinalities):
///
/// ```text
///  Query ─[1:n]→ EntrezProtein ─[1:n]→ Pfam      ─[n:m]→ AmiGO
///                             └─[1:n]→ TigrFam   ─[n:m]→ AmiGO
///                             └─[1:n]→ NCBIBlast ─[n:1]→ EntrezGene ─[n:m]→ AmiGO
/// ```
///
/// Set-level confidences follow the paper's narrative: curated sources
/// (EntrezGene, AmiGO) are trusted most; HMM-based family matchers (Pfam,
/// TIGRFAM) more than plain BLAST ("Algorithms like those in Pfam are
/// believed to be more accurate in general", §2).
pub fn biorank_schema() -> BiorankSchema {
    let mut s = Schema::new();
    let query = s
        .entity("Query", "Mediator", &["keyword"], 1.0)
        .expect("fresh schema");
    let entrez_protein = s
        .entity("EntrezProtein", "EntrezProtein", &["name", "seq"], 1.0)
        .expect("fresh schema");
    let pfam = s
        .entity("Pfam", "Pfam", &["family", "e-value"], 0.9)
        .expect("fresh schema");
    let tigrfam = s
        .entity("TigrFam", "TIGRFAM", &["family", "e-value"], 0.9)
        .expect("fresh schema");
    let ncbi_blast = s
        .entity("NCBIBlast", "NCBIBlast", &["seq2", "e-value"], 0.8)
        .expect("fresh schema");
    let entrez_gene = s
        .entity("EntrezGene", "EntrezGene", &["StatusCode", "idGO"], 1.0)
        .expect("fresh schema");
    let amigo = s
        .entity("AmiGO", "AmiGO", &["EvidenceCode"], 1.0)
        .expect("fresh schema");

    let mut relationships = Vec::new();
    let rel = |s: &mut Schema, name, from, to, card, qs| {
        s.relationship(name, from, to, card, qs)
            .expect("fresh schema relationships")
    };
    // Keyword match from the query node to matching proteins.
    relationships.push(rel(
        &mut s,
        "match",
        query,
        entrez_protein,
        Cardinality::OneToMany,
        1.0,
    ));
    // Sequence-similarity matchers; HMM algorithms (Pfam/TIGRFAM) carry a
    // higher relationship confidence than BLAST.
    relationships.push(rel(
        &mut s,
        "prot2pfam",
        entrez_protein,
        pfam,
        Cardinality::OneToMany,
        0.9,
    ));
    relationships.push(rel(
        &mut s,
        "prot2tigrfam",
        entrez_protein,
        tigrfam,
        Cardinality::OneToMany,
        0.9,
    ));
    relationships.push(rel(
        &mut s,
        "prot2blast",
        entrez_protein,
        ncbi_blast,
        Cardinality::OneToMany,
        0.7,
    ));
    // NCBIBlast2: foreign key into EntrezGene (qr = 1 on records).
    relationships.push(rel(
        &mut s,
        "blast2gene",
        ncbi_blast,
        entrez_gene,
        Cardinality::ManyToOne,
        1.0,
    ));
    // Function annotations: the convergent [n:m] relations into AmiGO.
    relationships.push(rel(
        &mut s,
        "pfam2go",
        pfam,
        amigo,
        Cardinality::ManyToMany,
        1.0,
    ));
    relationships.push(rel(
        &mut s,
        "tigrfam2go",
        tigrfam,
        amigo,
        Cardinality::ManyToMany,
        1.0,
    ));
    relationships.push(rel(
        &mut s,
        "gene2go",
        entrez_gene,
        amigo,
        Cardinality::ManyToMany,
        1.0,
    ));

    // Domain knowledge: following a blast hit to its unique gene keeps
    // the fan-out character of the query→hits expansion.
    let mut hints = ComposeHints::none();
    hints.declare("prot2blast", "blast2gene", Cardinality::OneToMany);

    BiorankSchema {
        schema: s,
        query,
        entrez_protein,
        pfam,
        tigrfam,
        ncbi_blast,
        entrez_gene,
        amigo,
        relationships,
        hints,
    }
}

/// The Fig. 1 schema extended with the Gene Ontology's own `is_a`
/// term–term relationship (`go2go : AmiGO → AmiGO`, `[m:n]`).
///
/// AmiGO exports four relationships in the paper's catalog; the
/// ontology links among them are what give real query graphs their
/// non-series-parallel diamonds — the structure on which propagation
/// and reliability genuinely differ (Fig. 4a). The plain
/// [`biorank_schema`] stays faithful to the Fig. 1 drawing and keeps
/// its per-answer closed-form reducibility; this variant is what the
/// integration pipeline uses.
pub fn biorank_schema_with_ontology() -> BiorankSchema {
    let mut b = biorank_schema();
    let rel = b
        .schema
        .relationship("go2go", b.amigo, b.amigo, Cardinality::ManyToMany, 0.9)
        .expect("go2go is a fresh relationship name");
    b.relationships.push(rel);
    b
}

/// The full 11-source federation: the ontology schema plus PIRSF,
/// SuperFamily, CDD, UniProt and PDB.
///
/// Set-level confidences continue the paper's narrative: "our
/// collaborators have evidence that results from PIRSF are more
/// accurate than Pfam" (§2) — PIRSF gets `ps = 0.95` against Pfam's
/// 0.9; SuperFamily and CDD sit below; UniProt cross-references are
/// curated foreign keys (`ps = qs = 1`); PDB exports no relationships
/// (its structures are leaves, pruned from every query graph).
pub fn biorank_schema_full() -> BiorankSchema {
    let mut b = biorank_schema_with_ontology();
    let s = &mut b.schema;
    let pirsf = s
        .entity("PIRSF", "PIRSF", &["family", "e-value"], 0.95)
        .expect("fresh entity set");
    let superfamily = s
        .entity("SuperFamily", "SuperFamily", &["family", "e-value"], 0.85)
        .expect("fresh entity set");
    let cdd = s
        .entity("CDD", "CDD", &["domain", "e-value"], 0.85)
        .expect("fresh entity set");
    let uniprot = s
        .entity("UniProt", "UniProt", &["accession"], 1.0)
        .expect("fresh entity set");
    let pdb = s
        .entity("PDB", "PDB", &["structure"], 1.0)
        .expect("fresh entity set");
    let rel = |s: &mut Schema, name, from, to, card, qs| {
        s.relationship(name, from, to, card, qs).expect("fresh rel")
    };
    let ep = b.entrez_protein;
    let new_rels = [
        rel(s, "prot2pirsf", ep, pirsf, Cardinality::OneToMany, 0.95),
        rel(s, "pirsf2go", pirsf, b.amigo, Cardinality::ManyToMany, 1.0),
        rel(
            s,
            "prot2superfamily",
            ep,
            superfamily,
            Cardinality::OneToMany,
            0.8,
        ),
        rel(
            s,
            "superfamily2go",
            superfamily,
            b.amigo,
            Cardinality::ManyToMany,
            1.0,
        ),
        rel(s, "prot2cdd", ep, cdd, Cardinality::OneToMany, 0.8),
        rel(s, "cdd2go", cdd, b.amigo, Cardinality::ManyToMany, 1.0),
        rel(s, "prot2uniprot", ep, uniprot, Cardinality::OneToOne, 1.0),
        rel(
            s,
            "uniprot2gene",
            uniprot,
            b.entrez_gene,
            Cardinality::ManyToOne,
            1.0,
        ),
        rel(s, "prot2pdb", ep, pdb, Cardinality::OneToMany, 1.0),
    ];
    b.relationships.extend(new_rels);
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reducible::{check_query_reducible, check_reducible};

    #[test]
    fn catalog_matches_paper_table() {
        let cat = source_catalog();
        assert_eq!(cat.len(), 11);
        let total_e: usize = cat.iter().map(|s| s.entity_sets).sum();
        let total_r: usize = cat.iter().map(|s| s.relationships).sum();
        // Sums of the paper's #E and #R columns.
        assert_eq!(total_e, 21);
        assert_eq!(total_r, 31);
        let blast = cat.iter().find(|s| s.name == "NCBIBlast").unwrap();
        assert_eq!(blast.entity_sets, 2);
        assert_eq!(blast.relationships, 3);
        let pdb = cat.iter().find(|s| s.name == "PDB").unwrap();
        assert_eq!(pdb.relationships, 0);
    }

    #[test]
    fn schema_has_expected_shape() {
        let b = biorank_schema();
        assert_eq!(b.schema.entity_set_count(), 7);
        assert_eq!(b.schema.relationship_count(), 8);
        assert_eq!(b.relationships.len(), 8);
        // Three convergent relations into AmiGO.
        assert_eq!(b.schema.incoming(b.amigo).count(), 3);
        // The query node fans into EntrezProtein only.
        assert_eq!(b.schema.outgoing(b.query).count(), 1);
    }

    #[test]
    fn whole_schema_is_not_reducible() {
        // §4 Efficiency (1): "the total graph is not reducible due to the
        // last [n:m] relation".
        let b = biorank_schema();
        let r = check_reducible(&b.schema, b.query, &b.hints);
        assert!(!r.is_reducible(), "got {r:?}");
    }

    #[test]
    fn per_answer_queries_are_reducible() {
        // §4 Efficiency (1): "the individual queries, however, can be
        // solved in a closed solution... the last [n:m] relationship
        // becomes [n:1] from the point of view of each node in the
        // answer set. Our theory proves to be right and useful."
        let b = biorank_schema();
        let r = check_query_reducible(&b.schema, b.query, b.amigo, &b.hints);
        assert!(r.is_reducible(), "got {r:?}");
    }

    #[test]
    fn confidence_ordering_matches_narrative() {
        let b = biorank_schema();
        let ps = |id| b.schema.entity_set(id).ps.get();
        // Curated sources most trusted; HMM matchers above BLAST.
        assert!(ps(b.entrez_gene) >= ps(b.pfam));
        assert!(ps(b.pfam) > ps(b.ncbi_blast));
        let qs_of = |name: &str| {
            let id = b.schema.relationship_by_name(name).unwrap();
            b.schema.rel(id).qs.get()
        };
        assert!(qs_of("prot2pfam") > qs_of("prot2blast"));
    }
}
