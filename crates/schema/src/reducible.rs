//! Theorem 3.2 — deciding whether an E/R schema is *reducible*.
//!
//! A schema is reducible when every data-graph instance of it collapses
//! completely under the three reduction rules of `biorank_graph::reduction`,
//! so that source–target reliability has a tractable closed form.
//!
//! The theorem gives two constructors:
//!
//! * **Part A** — a tree consisting only of `[1:n]` relationships is
//!   reducible.
//! * **Part B** — if an entity set `P` has exactly one incoming `[1:n]`
//!   relationship `Q` and exactly one outgoing `[n:1]` relationship `Q′`,
//!   and the composition `Q ∘ Q′` is known (by algebra or by *domain
//!   knowledge*) to be `[1:n]` or `[n:1]` but not `[m:n]`, then `S` is
//!   reducible iff the schema with `P` contracted is.
//!
//! The checker implements both parts with backtracking over the choice of
//! `P` (the theorem's key insight is that *order of composition matters*,
//! Fig. 3). It is sound but — like the theorem — not complete: `Unknown`
//! means "the theorem does not apply", not "irreducible".
//!
//! [`check_query_reducible`] adds the observation from the efficiency
//! study (§4, item 1): from the point of view of a **single answer
//! node**, every relationship into the answer entity set is effectively
//! `[n:1]` — at the data level all edges into one target node that share
//! a left record are parallel and merge under rule 3. With that
//! refinement the paper's Fig. 1 query schema, irreducible as a whole
//! because of its final `[n:m]` relation, solves in closed form per
//! answer — "our theory proves to be right and useful".

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::{Cardinality, Composition, EntitySetId, Schema};

/// Domain-knowledge hints resolving ambiguous `[1:n] ∘ [n:1]`
/// compositions, keyed by the pair of relationship names.
///
/// Composed relationships are named `"left∘right"` and merged parallel
/// relationships `"left∥right"`, so hints can chain.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ComposeHints {
    map: BTreeMap<(String, String), Cardinality>,
}

impl ComposeHints {
    /// No hints: only the unconditional algebra applies.
    pub fn none() -> Self {
        Self::default()
    }

    /// Declares that `left ∘ right` has the given cardinality.
    pub fn declare(&mut self, left: &str, right: &str, card: Cardinality) -> &mut Self {
        self.map.insert((left.to_string(), right.to_string()), card);
        self
    }

    fn lookup(&self, left: &str, right: &str) -> Option<Cardinality> {
        self.map
            .get(&(left.to_string(), right.to_string()))
            .copied()
    }
}

/// One step in a successful reducibility derivation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Step {
    /// The residual schema is a `[1:n]` tree, possibly with terminal
    /// per-target `[n:1]` relationships (Theorem 3.2 Part A).
    TreeBase,
    /// Parallel relationships between the same entity pair were merged.
    MergeParallel {
        /// First merged relationship name.
        left: String,
        /// Second merged relationship name.
        right: String,
        /// Cardinality of the merged relationship.
        merged: Cardinality,
    },
    /// Entity set `entity` was contracted via Part B.
    Contract {
        /// The contracted entity set name.
        entity: String,
        /// Name of the incoming relationship `Q`.
        incoming: String,
        /// Name of the outgoing relationship `Q′`.
        outgoing: String,
        /// Cardinality of the composition `Q ∘ Q′`.
        composed: Cardinality,
    },
}

/// Result of a reducibility check.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Reducibility {
    /// The schema is reducible; `steps` is a derivation witness.
    Reducible {
        /// The derivation, outermost step first.
        steps: Vec<Step>,
    },
    /// Theorem 3.2 does not apply (instances may still happen to reduce,
    /// but no closed form is guaranteed).
    Unknown {
        /// Entity sets remaining in the stuck residual view.
        residual_entities: Vec<String>,
    },
}

impl Reducibility {
    /// `true` when reducible.
    pub fn is_reducible(&self) -> bool {
        matches!(self, Reducibility::Reducible { .. })
    }
}

/// A lightweight working copy of the query-relevant part of a schema.
#[derive(Clone, Debug)]
struct View {
    entities: Vec<String>,
    alive: Vec<bool>,
    rels: Vec<ViewRel>,
    /// In per-target mode, the answer entity set viewed as one node.
    single_target: Option<usize>,
}

#[derive(Clone, Debug)]
struct ViewRel {
    name: String,
    from: usize,
    to: usize,
    card: Cardinality,
    alive: bool,
}

impl View {
    fn from_schema(schema: &Schema, root: EntitySetId, single_target: Option<EntitySetId>) -> View {
        // Keep only entity sets reachable from the root by following
        // relationships forward (the direction exploratory queries walk).
        let n = schema.entity_set_count();
        let mut reach = vec![false; n];
        reach[root.0] = true;
        let mut stack = vec![root.0];
        while let Some(x) = stack.pop() {
            for (_, r) in schema.outgoing(EntitySetId(x)) {
                if !reach[r.to.0] {
                    reach[r.to.0] = true;
                    stack.push(r.to.0);
                }
            }
        }
        let entities = (0..n)
            .map(|i| schema.entity_set(EntitySetId(i)).name.clone())
            .collect();
        let single_target = single_target.map(|t| t.0);
        let rels = schema
            .relationships()
            .filter(|(_, r)| reach[r.from.0] && reach[r.to.0])
            .map(|(_, r)| ViewRel {
                name: r.name.clone(),
                from: r.from.0,
                to: r.to.0,
                // Per-target mode: any relation into the single answer
                // node is [n:1] after parallel-edge merging.
                card: if single_target == Some(r.to.0) {
                    Cardinality::ManyToOne
                } else {
                    r.cardinality
                },
                alive: true,
            })
            .collect();
        View {
            entities,
            alive: reach,
            rels,
            single_target,
        }
    }

    fn live_rels(&self) -> impl Iterator<Item = usize> + '_ {
        self.rels
            .iter()
            .enumerate()
            .filter(|(_, r)| r.alive)
            .map(|(i, _)| i)
    }

    fn in_rels(&self, e: usize) -> Vec<usize> {
        self.live_rels().filter(|&i| self.rels[i].to == e).collect()
    }

    fn out_rels(&self, e: usize) -> Vec<usize> {
        self.live_rels()
            .filter(|&i| self.rels[i].from == e)
            .collect()
    }

    /// Part A base case, extended for per-target mode.
    ///
    /// The view must be an acyclic graph with exactly one root where
    /// every non-root entity (other than the single target) has exactly
    /// one incoming relationship, every relationship not entering the
    /// single target is `[1:n]`/`[1:1]`, and relationships into the
    /// single target may also be `[n:1]` (their data edges funnel into
    /// one node and collapse by serial+parallel reduction).
    fn is_reducible_base(&self) -> bool {
        let live: Vec<usize> = (0..self.entities.len())
            .filter(|&i| self.alive[i])
            .collect();
        if live.is_empty() {
            return false;
        }
        for i in self.live_rels() {
            let r = &self.rels[i];
            let into_target = self.single_target == Some(r.to);
            let ok = match r.card {
                Cardinality::OneToMany | Cardinality::OneToOne => true,
                Cardinality::ManyToOne => into_target,
                Cardinality::ManyToMany => false,
            };
            if !ok {
                return false;
            }
        }
        let mut indeg = vec![0usize; self.entities.len()];
        for i in self.live_rels() {
            indeg[self.rels[i].to] += 1;
        }
        let roots: Vec<usize> = live.iter().copied().filter(|&e| indeg[e] == 0).collect();
        if roots.len() != 1 {
            return false;
        }
        let root = roots[0];
        for &e in &live {
            if e == root || self.single_target == Some(e) {
                continue;
            }
            if indeg[e] != 1 {
                return false;
            }
        }
        self.is_acyclic()
    }

    fn is_acyclic(&self) -> bool {
        // Kahn over the live view.
        let mut indeg = vec![0usize; self.entities.len()];
        let mut live_count = 0usize;
        for (i, &a) in self.alive.iter().enumerate() {
            if a {
                live_count += 1;
                indeg[i] = 0;
            }
        }
        for i in self.live_rels() {
            indeg[self.rels[i].to] += 1;
        }
        let mut queue: Vec<usize> = (0..self.entities.len())
            .filter(|&i| self.alive[i] && indeg[i] == 0)
            .collect();
        let mut seen = 0usize;
        while let Some(x) = queue.pop() {
            seen += 1;
            for i in self.live_rels() {
                if self.rels[i].from == x {
                    indeg[self.rels[i].to] -= 1;
                    if indeg[self.rels[i].to] == 0 {
                        queue.push(self.rels[i].to);
                    }
                }
            }
        }
        seen == live_count
    }

    /// Merges one pair of parallel relationships (same from/to).
    ///
    /// The merged cardinality is `[n:1]` when both enter the single
    /// target (all data edges converge on one node and rule 3 merges
    /// them), `[m:n]` otherwise (conservative: unions of functional
    /// relations need not be functional).
    fn merge_one_parallel(&mut self) -> Option<Step> {
        let live: Vec<usize> = self.live_rels().collect();
        for (ai, &a) in live.iter().enumerate() {
            for &b in &live[ai + 1..] {
                if self.rels[a].from == self.rels[b].from && self.rels[a].to == self.rels[b].to {
                    let merged_card = if self.single_target == Some(self.rels[a].to) {
                        Cardinality::ManyToOne
                    } else {
                        Cardinality::ManyToMany
                    };
                    let step = Step::MergeParallel {
                        left: self.rels[a].name.clone(),
                        right: self.rels[b].name.clone(),
                        merged: merged_card,
                    };
                    let merged = ViewRel {
                        name: format!("{}∥{}", self.rels[a].name, self.rels[b].name),
                        from: self.rels[a].from,
                        to: self.rels[a].to,
                        card: merged_card,
                        alive: true,
                    };
                    self.rels[a].alive = false;
                    self.rels[b].alive = false;
                    self.rels.push(merged);
                    return Some(step);
                }
            }
        }
        None
    }
}

/// Checks Theorem 3.2 on the part of `schema` reachable from `root`.
pub fn check_reducible(schema: &Schema, root: EntitySetId, hints: &ComposeHints) -> Reducibility {
    let view = View::from_schema(schema, root, None);
    run_check(view, hints)
}

/// Checks reducibility of the query schema *per answer node* (§4,
/// Efficiency item 1): every relationship into `answer_set` is viewed as
/// `[n:1]`, and ambiguous compositions ending at the answer set resolve
/// to `[n:1]` automatically.
pub fn check_query_reducible(
    schema: &Schema,
    root: EntitySetId,
    answer_set: EntitySetId,
    hints: &ComposeHints,
) -> Reducibility {
    let view = View::from_schema(schema, root, Some(answer_set));
    run_check(view, hints)
}

fn run_check(mut view: View, hints: &ComposeHints) -> Reducibility {
    let mut steps = Vec::new();
    while let Some(step) = view.merge_one_parallel() {
        steps.push(step);
    }
    match search(&view, hints, 0) {
        Some(mut tail) => {
            steps.append(&mut tail);
            Reducibility::Reducible { steps }
        }
        None => Reducibility::Unknown {
            residual_entities: (0..view.entities.len())
                .filter(|&i| view.alive[i])
                .map(|i| view.entities[i].clone())
                .collect(),
        },
    }
}

const MAX_DEPTH: usize = 64;

fn search(view: &View, hints: &ComposeHints, depth: usize) -> Option<Vec<Step>> {
    if depth > MAX_DEPTH {
        return None;
    }
    if view.is_reducible_base() {
        return Some(vec![Step::TreeBase]);
    }
    // Part B: try every contractible entity set, backtracking.
    let candidates: Vec<usize> = (0..view.entities.len())
        .filter(|&e| view.alive[e] && view.single_target != Some(e))
        .collect();
    for p in candidates {
        let ins = view.in_rels(p);
        let outs = view.out_rels(p);
        if ins.len() != 1 || outs.len() != 1 {
            continue;
        }
        let (qi, qo) = (ins[0], outs[0]);
        let cin = view.rels[qi].card;
        let cout = view.rels[qo].card;
        // Q must be [1:n] (or [1:1] as its sub-case), Q′ must be [n:1].
        if !matches!(cin, Cardinality::OneToMany | Cardinality::OneToOne) {
            continue;
        }
        if !matches!(cout, Cardinality::ManyToOne | Cardinality::OneToOne) {
            continue;
        }
        let into_target = view.single_target == Some(view.rels[qo].to);
        let composed = match cin.compose(cout) {
            Composition::Always(c) => Some(c),
            Composition::NeedsDomainKnowledge => {
                if into_target {
                    // Composite relation into one answer node: the data
                    // edges collapse to at most one per left record.
                    Some(Cardinality::ManyToOne)
                } else {
                    hints.lookup(&view.rels[qi].name, &view.rels[qo].name)
                }
            }
        };
        let Some(composed) = composed else { continue };
        if composed == Cardinality::ManyToMany {
            continue; // Part B explicitly excludes [m:n] compositions.
        }
        // A self-loop composition only arises on cyclic schemas — skip.
        if view.rels[qi].from == view.rels[qo].to {
            continue;
        }
        let mut next = view.clone();
        next.rels[qi].alive = false;
        next.rels[qo].alive = false;
        next.alive[p] = false;
        next.rels.push(ViewRel {
            name: format!("{}∘{}", view.rels[qi].name, view.rels[qo].name),
            from: view.rels[qi].from,
            to: view.rels[qo].to,
            card: composed,
            alive: true,
        });
        let mut merge_steps = Vec::new();
        while let Some(s) = next.merge_one_parallel() {
            merge_steps.push(s);
        }
        if let Some(tail) = search(&next, hints, depth + 1) {
            let mut steps = vec![Step::Contract {
                entity: view.entities[p].clone(),
                incoming: view.rels[qi].name.clone(),
                outgoing: view.rels[qo].name.clone(),
                composed,
            }];
            steps.extend(merge_steps);
            steps.extend(tail);
            return Some(steps);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cardinality::*;

    /// Builds the chain schema of Fig. 3a:
    /// 0 –[1:n]→ 1 –[n:1]→ 2 –[1:n]→ 3 –[n:1]→ 4 –[1:n]→ 5
    /// with hints making the inner compositions collapse as in the figure.
    fn fig3a() -> (Schema, EntitySetId, ComposeHints) {
        let mut s = Schema::new();
        let ids: Vec<_> = (0..6)
            .map(|i| s.entity(&format!("P{i}"), "src", &[], 1.0).unwrap())
            .collect();
        s.relationship("q01", ids[0], ids[1], OneToMany, 1.0)
            .unwrap();
        s.relationship("q12", ids[1], ids[2], ManyToOne, 1.0)
            .unwrap();
        s.relationship("q23", ids[2], ids[3], OneToMany, 1.0)
            .unwrap();
        s.relationship("q34", ids[3], ids[4], ManyToOne, 1.0)
            .unwrap();
        s.relationship("q45", ids[4], ids[5], OneToMany, 1.0)
            .unwrap();
        let mut hints = ComposeHints::none();
        // Innermost compositions first (the theorem's key insight is
        // that order matters); both resolve so that the residual chain
        // ends as a [1:n] tree.
        hints.declare("q01", "q12", OneToMany);
        hints.declare("q23", "q34", ManyToOne);
        hints.declare("q01∘q12", "q23∘q34", OneToMany);
        (s, ids[0], hints)
    }

    #[test]
    fn part_a_tree_of_one_to_many() {
        let mut s = Schema::new();
        let a = s.entity("A", "x", &[], 1.0).unwrap();
        let b = s.entity("B", "x", &[], 1.0).unwrap();
        let c = s.entity("C", "x", &[], 1.0).unwrap();
        s.relationship("ab", a, b, OneToMany, 1.0).unwrap();
        s.relationship("ac", a, c, OneToMany, 1.0).unwrap();
        let r = check_reducible(&s, a, &ComposeHints::none());
        assert_eq!(
            r,
            Reducibility::Reducible {
                steps: vec![Step::TreeBase]
            }
        );
    }

    #[test]
    fn many_to_many_chain_is_unknown() {
        // Fig 2a: 0 –[1:n]→ 1 –[n:m]→ 2 –[n:1]→ 3 is irreducible.
        let mut s = Schema::new();
        let ids: Vec<_> = (0..4)
            .map(|i| s.entity(&format!("P{i}"), "x", &[], 1.0).unwrap())
            .collect();
        s.relationship("q01", ids[0], ids[1], OneToMany, 1.0)
            .unwrap();
        s.relationship("q12", ids[1], ids[2], ManyToMany, 1.0)
            .unwrap();
        s.relationship("q23", ids[2], ids[3], ManyToOne, 1.0)
            .unwrap();
        let r = check_reducible(&s, ids[0], &ComposeHints::none());
        assert!(!r.is_reducible(), "got {r:?}");
    }

    #[test]
    fn fig2b_one_to_n_then_n_to_1_needs_hints() {
        // Fig 2b: 0 –[1:n]→ 1 –[1:n]→ 2 –[n:1]→ 3 –[n:1]→ 4 may be
        // irreducible: without hints the checker must say Unknown.
        let mut s = Schema::new();
        let ids: Vec<_> = (0..5)
            .map(|i| s.entity(&format!("P{i}"), "x", &[], 1.0).unwrap())
            .collect();
        s.relationship("q01", ids[0], ids[1], OneToMany, 1.0)
            .unwrap();
        s.relationship("q12", ids[1], ids[2], OneToMany, 1.0)
            .unwrap();
        s.relationship("q23", ids[2], ids[3], ManyToOne, 1.0)
            .unwrap();
        s.relationship("q34", ids[3], ids[4], ManyToOne, 1.0)
            .unwrap();
        let r = check_reducible(&s, ids[0], &ComposeHints::none());
        assert!(!r.is_reducible(), "got {r:?}");
    }

    #[test]
    fn fig3a_reducible_with_hints() {
        let (s, root, hints) = fig3a();
        let r = check_reducible(&s, root, &hints);
        assert!(r.is_reducible(), "got {r:?}");
    }

    #[test]
    fn fig3a_unknown_without_hints() {
        let (s, root, _) = fig3a();
        let r = check_reducible(&s, root, &ComposeHints::none());
        assert!(!r.is_reducible());
    }

    #[test]
    fn fig3b_m_n_composition_blocks() {
        // Same chain, but the first composition is declared [m:n]:
        // Part B must not fire through it (Fig. 3b).
        let (s, root, _) = fig3a();
        let mut hints = ComposeHints::none();
        hints.declare("q01", "q12", ManyToMany);
        hints.declare("q23", "q34", ManyToOne);
        let r = check_reducible(&s, root, &hints);
        assert!(!r.is_reducible(), "m:n composition must block Part B");
    }

    #[test]
    fn contraction_chains_through_hints() {
        // 0 –[1:n]→ 1 –[n:1]→ 2 –[n:1]→ 3 with hints resolving both
        // compositions.
        let mut s = Schema::new();
        let ids: Vec<_> = (0..4)
            .map(|i| s.entity(&format!("P{i}"), "x", &[], 1.0).unwrap())
            .collect();
        s.relationship("q01", ids[0], ids[1], OneToMany, 1.0)
            .unwrap();
        s.relationship("q12", ids[1], ids[2], ManyToOne, 1.0)
            .unwrap();
        s.relationship("q23", ids[2], ids[3], ManyToOne, 1.0)
            .unwrap();
        let mut hints = ComposeHints::none();
        hints.declare("q01", "q12", OneToMany);
        hints.declare("q01∘q12", "q23", OneToMany);
        let r = check_reducible(&s, ids[0], &hints);
        assert!(r.is_reducible(), "got {r:?}");
    }

    #[test]
    fn single_entity_root_is_reducible() {
        let mut s = Schema::new();
        let a = s.entity("A", "x", &[], 1.0).unwrap();
        let r = check_reducible(&s, a, &ComposeHints::none());
        assert!(r.is_reducible());
    }

    #[test]
    fn unreachable_entities_are_ignored() {
        let mut s = Schema::new();
        let a = s.entity("A", "x", &[], 1.0).unwrap();
        let b = s.entity("B", "x", &[], 1.0).unwrap();
        let c = s.entity("C", "x", &[], 1.0).unwrap();
        s.relationship("ab", a, b, OneToMany, 1.0).unwrap();
        // C only points INTO the reachable part; it is not reachable
        // from A and must not affect the answer.
        s.relationship("cb", c, b, ManyToMany, 1.0).unwrap();
        let r = check_reducible(&s, a, &ComposeHints::none());
        assert!(r.is_reducible(), "got {r:?}");
    }

    #[test]
    fn query_view_retypes_final_relationship() {
        // 0 –[1:n]→ 1 –[m:n]→ 2 (answers): whole schema unknown, but per
        // answer node the final [m:n] becomes [n:1] and the ambiguous
        // composition into the target auto-resolves.
        let mut s = Schema::new();
        let ids: Vec<_> = (0..3)
            .map(|i| s.entity(&format!("P{i}"), "x", &[], 1.0).unwrap())
            .collect();
        s.relationship("q01", ids[0], ids[1], OneToMany, 1.0)
            .unwrap();
        s.relationship("q12", ids[1], ids[2], ManyToMany, 1.0)
            .unwrap();
        assert!(!check_reducible(&s, ids[0], &ComposeHints::none()).is_reducible());
        let r = check_query_reducible(&s, ids[0], ids[2], &ComposeHints::none());
        assert!(r.is_reducible(), "got {r:?}");
    }

    #[test]
    fn parallel_relationships_merge_to_m_n_without_target() {
        let mut s = Schema::new();
        let a = s.entity("A", "x", &[], 1.0).unwrap();
        let b = s.entity("B", "x", &[], 1.0).unwrap();
        s.relationship("r1", a, b, OneToMany, 1.0).unwrap();
        s.relationship("r2", a, b, ManyToOne, 1.0).unwrap();
        let r = check_reducible(&s, a, &ComposeHints::none());
        assert!(!r.is_reducible());
        // Per-target, the same pair merges to [n:1] and reduces.
        let r = check_query_reducible(&s, a, b, &ComposeHints::none());
        assert!(r.is_reducible(), "got {r:?}");
    }

    #[test]
    fn diamond_of_branches_reduces_per_target() {
        // root fans out to two chains that converge on the answers —
        // the archetypal BioRank query shape.
        let mut s = Schema::new();
        let root = s.entity("Root", "x", &[], 1.0).unwrap();
        let l = s.entity("L", "x", &[], 1.0).unwrap();
        let rgt = s.entity("R", "x", &[], 1.0).unwrap();
        let t = s.entity("T", "x", &[], 1.0).unwrap();
        s.relationship("rl", root, l, OneToMany, 1.0).unwrap();
        s.relationship("rr", root, rgt, OneToMany, 1.0).unwrap();
        s.relationship("lt", l, t, ManyToMany, 1.0).unwrap();
        s.relationship("rt", rgt, t, ManyToMany, 1.0).unwrap();
        assert!(!check_reducible(&s, root, &ComposeHints::none()).is_reducible());
        let r = check_query_reducible(&s, root, t, &ComposeHints::none());
        assert!(r.is_reducible(), "got {r:?}");
    }

    #[test]
    fn cyclic_schema_is_unknown() {
        let mut s = Schema::new();
        let a = s.entity("A", "x", &[], 1.0).unwrap();
        let b = s.entity("B", "x", &[], 1.0).unwrap();
        s.relationship("ab", a, b, OneToMany, 1.0).unwrap();
        s.relationship("ba", b, a, OneToMany, 1.0).unwrap();
        let r = check_reducible(&s, a, &ComposeHints::none());
        assert!(!r.is_reducible());
    }
}
