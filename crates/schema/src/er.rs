//! The mediated Entity-Relationship schema (paper §2).
//!
//! "An entity set has a schema `P(id, a1, a2, …)` where `id` is the key,
//! and a relationship has a schema `Q(id, id′, b1, b2, …)` where `id, id′`
//! are foreign keys to two entity sets `P, P′` that `Q` relates."
//!
//! Every data source exports one or more entity sets; the mediator
//! computes relationships between them (foreign keys, alias lookups,
//! keyword matches). Each entity set carries a set-level confidence `ps`,
//! each relationship a set-level confidence `qs` (paper §2, "Transforming
//! uncertainties into probabilities").

use std::collections::BTreeMap;

use biorank_graph::Prob;
use serde::{Deserialize, Serialize};

use crate::{Cardinality, Error};

/// Index of an entity set within a [`Schema`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EntitySetId(pub usize);

/// Index of a relationship within a [`Schema`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RelationshipId(pub usize);

/// Declaration of an entity set in the mediated schema.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EntitySetDef {
    /// Unique name, e.g. `"EntrezGene"`.
    pub name: String,
    /// Name of the data source exporting this set, e.g. `"Entrez"`.
    pub source: String,
    /// Attribute names beyond the key.
    pub attributes: Vec<String>,
    /// Set-level confidence `ps ∈ [0,1]` — "the degree of confidence in a
    /// data source as a whole", a user-tunable parameter.
    pub ps: Prob,
}

/// Declaration of a binary relationship in the mediated schema.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RelationshipDef {
    /// Unique name, e.g. `"NCBIBlast1"`.
    pub name: String,
    /// Left entity set.
    pub from: EntitySetId,
    /// Right entity set.
    pub to: EntitySetId,
    /// Declared cardinality type.
    pub cardinality: Cardinality,
    /// Set-level confidence `qs ∈ [0,1]` — "the degree of confidence in a
    /// relationship as a whole" (e.g. HMM matching beats plain BLAST).
    pub qs: Prob,
}

/// A validated mediated schema: entity sets plus relationships.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Schema {
    entity_sets: Vec<EntitySetDef>,
    relationships: Vec<RelationshipDef>,
    by_entity_name: BTreeMap<String, EntitySetId>,
    by_rel_name: BTreeMap<String, RelationshipId>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an entity set; rejects duplicate names.
    pub fn add_entity_set(&mut self, def: EntitySetDef) -> Result<EntitySetId, Error> {
        if self.by_entity_name.contains_key(&def.name) {
            return Err(Error::DuplicateName(def.name));
        }
        let id = EntitySetId(self.entity_sets.len());
        self.by_entity_name.insert(def.name.clone(), id);
        self.entity_sets.push(def);
        Ok(id)
    }

    /// Adds a relationship; rejects duplicate names and dangling endpoints.
    pub fn add_relationship(&mut self, def: RelationshipDef) -> Result<RelationshipId, Error> {
        if self.by_rel_name.contains_key(&def.name) {
            return Err(Error::DuplicateName(def.name));
        }
        if def.from.0 >= self.entity_sets.len() {
            return Err(Error::UnknownEntitySet(format!("#{}", def.from.0)));
        }
        if def.to.0 >= self.entity_sets.len() {
            return Err(Error::UnknownEntitySet(format!("#{}", def.to.0)));
        }
        let id = RelationshipId(self.relationships.len());
        self.by_rel_name.insert(def.name.clone(), id);
        self.relationships.push(def);
        Ok(id)
    }

    /// Convenience: add an entity set from parts.
    pub fn entity(
        &mut self,
        name: &str,
        source: &str,
        attributes: &[&str],
        ps: f64,
    ) -> Result<EntitySetId, Error> {
        self.add_entity_set(EntitySetDef {
            name: name.to_string(),
            source: source.to_string(),
            attributes: attributes.iter().map(|s| s.to_string()).collect(),
            ps: Prob::new(ps).map_err(Error::Graph)?,
        })
    }

    /// Convenience: add a relationship from parts.
    pub fn relationship(
        &mut self,
        name: &str,
        from: EntitySetId,
        to: EntitySetId,
        cardinality: Cardinality,
        qs: f64,
    ) -> Result<RelationshipId, Error> {
        self.add_relationship(RelationshipDef {
            name: name.to_string(),
            from,
            to,
            cardinality,
            qs: Prob::new(qs).map_err(Error::Graph)?,
        })
    }

    /// Looks up an entity set by name.
    pub fn entity_set_by_name(&self, name: &str) -> Option<EntitySetId> {
        self.by_entity_name.get(name).copied()
    }

    /// Looks up a relationship by name.
    pub fn relationship_by_name(&self, name: &str) -> Option<RelationshipId> {
        self.by_rel_name.get(name).copied()
    }

    /// The definition of entity set `id`.
    pub fn entity_set(&self, id: EntitySetId) -> &EntitySetDef {
        &self.entity_sets[id.0]
    }

    /// The definition of relationship `id`.
    pub fn rel(&self, id: RelationshipId) -> &RelationshipDef {
        &self.relationships[id.0]
    }

    /// All entity sets with their ids.
    pub fn entity_sets(&self) -> impl Iterator<Item = (EntitySetId, &EntitySetDef)> {
        self.entity_sets
            .iter()
            .enumerate()
            .map(|(i, d)| (EntitySetId(i), d))
    }

    /// All relationships with their ids.
    pub fn relationships(&self) -> impl Iterator<Item = (RelationshipId, &RelationshipDef)> {
        self.relationships
            .iter()
            .enumerate()
            .map(|(i, d)| (RelationshipId(i), d))
    }

    /// Number of entity sets.
    pub fn entity_set_count(&self) -> usize {
        self.entity_sets.len()
    }

    /// Number of relationships.
    pub fn relationship_count(&self) -> usize {
        self.relationships.len()
    }

    /// Relationships leaving entity set `p` (where `from == p`).
    pub fn outgoing(
        &self,
        p: EntitySetId,
    ) -> impl Iterator<Item = (RelationshipId, &RelationshipDef)> {
        self.relationships().filter(move |(_, d)| d.from == p)
    }

    /// Relationships entering entity set `p` (where `to == p`).
    pub fn incoming(
        &self,
        p: EntitySetId,
    ) -> impl Iterator<Item = (RelationshipId, &RelationshipDef)> {
        self.relationships().filter(move |(_, d)| d.to == p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Schema {
        let mut s = Schema::new();
        let gene = s
            .entity("EntrezGene", "Entrez", &["StatusCode", "idGO"], 0.9)
            .unwrap();
        let go = s.entity("AmiGO", "AmiGO", &["EvidenceCode"], 1.0).unwrap();
        s.relationship("gene2go", gene, go, Cardinality::OneToMany, 1.0)
            .unwrap();
        s
    }

    #[test]
    fn lookup_by_name() {
        let s = toy();
        let g = s.entity_set_by_name("EntrezGene").unwrap();
        assert_eq!(s.entity_set(g).source, "Entrez");
        assert_eq!(s.entity_set(g).ps.get(), 0.9);
        let r = s.relationship_by_name("gene2go").unwrap();
        assert_eq!(s.rel(r).cardinality, Cardinality::OneToMany);
        assert!(s.entity_set_by_name("nope").is_none());
    }

    #[test]
    fn duplicate_entity_name_rejected() {
        let mut s = toy();
        assert!(matches!(
            s.entity("EntrezGene", "x", &[], 1.0),
            Err(Error::DuplicateName(_))
        ));
    }

    #[test]
    fn duplicate_relationship_name_rejected() {
        let mut s = toy();
        let gene = s.entity_set_by_name("EntrezGene").unwrap();
        let go = s.entity_set_by_name("AmiGO").unwrap();
        assert!(matches!(
            s.relationship("gene2go", gene, go, Cardinality::ManyToOne, 1.0),
            Err(Error::DuplicateName(_))
        ));
    }

    #[test]
    fn dangling_relationship_rejected() {
        let mut s = toy();
        let gene = s.entity_set_by_name("EntrezGene").unwrap();
        assert!(s
            .relationship("bad", gene, EntitySetId(99), Cardinality::OneToMany, 1.0)
            .is_err());
    }

    #[test]
    fn invalid_ps_rejected() {
        let mut s = Schema::new();
        assert!(s.entity("X", "x", &[], 1.5).is_err());
    }

    #[test]
    fn incoming_outgoing_filters() {
        let s = toy();
        let gene = s.entity_set_by_name("EntrezGene").unwrap();
        let go = s.entity_set_by_name("AmiGO").unwrap();
        assert_eq!(s.outgoing(gene).count(), 1);
        assert_eq!(s.incoming(gene).count(), 0);
        assert_eq!(s.incoming(go).count(), 1);
    }
}
