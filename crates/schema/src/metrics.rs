//! Transforming uncertainties into probabilities (paper §2).
//!
//! BioRank populates four probabilistic metrics: per-set confidences `ps`
//! (entity sets) and `qs` (relationships) — carried on the schema — and
//! per-record transformation functions `pr(a1, a2, …)` and `qr(b1, b2, …)`
//! implemented here:
//!
//! * curated **status codes** (EntrezGene) and GO **evidence codes**
//!   (AmiGO) map through the expert-elicited tables reproduced verbatim
//!   from §2;
//! * BLAST **e-values** map through `qr = −(1/300)·ln(e-value)`, clamped
//!   to `[0, 1]`;
//! * foreign-key cross-references get `qr = 1`.
//!
//! The node and edge probabilities of the entity graph are then
//! `p(i) = ps(i)·pr(i)` and `q(i,j) = qs(i,j)·qr(i,j)`.

use std::fmt;
use std::str::FromStr;

use biorank_graph::Prob;
use serde::{Deserialize, Serialize};

/// EntrezGene curation status codes, ordered from most to least reliable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum StatusCode {
    Reviewed,
    Validated,
    Provisional,
    Predicted,
    Model,
    Inferred,
}

impl StatusCode {
    /// All status codes, most reliable first.
    pub const ALL: [StatusCode; 6] = [
        StatusCode::Reviewed,
        StatusCode::Validated,
        StatusCode::Provisional,
        StatusCode::Predicted,
        StatusCode::Model,
        StatusCode::Inferred,
    ];

    /// The expert-elicited `pr` value (paper §2, EntrezGene table).
    pub fn pr(self) -> Prob {
        let v = match self {
            StatusCode::Reviewed => 1.0,
            StatusCode::Validated => 0.8,
            StatusCode::Provisional => 0.7,
            StatusCode::Predicted => 0.4,
            StatusCode::Model => 0.3,
            StatusCode::Inferred => 0.2,
        };
        Prob::new(v).expect("table values are valid probabilities")
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StatusCode::Reviewed => "Reviewed",
            StatusCode::Validated => "Validated",
            StatusCode::Provisional => "Provisional",
            StatusCode::Predicted => "Predicted",
            StatusCode::Model => "Model",
            StatusCode::Inferred => "Inferred",
        };
        f.write_str(s)
    }
}

impl FromStr for StatusCode {
    type Err = UnknownCode;
    fn from_str(s: &str) -> Result<Self, UnknownCode> {
        match s {
            "Reviewed" => Ok(StatusCode::Reviewed),
            "Validated" => Ok(StatusCode::Validated),
            "Provisional" => Ok(StatusCode::Provisional),
            "Predicted" => Ok(StatusCode::Predicted),
            "Model" => Ok(StatusCode::Model),
            "Inferred" => Ok(StatusCode::Inferred),
            other => Err(UnknownCode(other.to_string())),
        }
    }
}

/// Gene Ontology evidence codes used by AmiGO annotations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum EvidenceCode {
    /// Inferred from Direct Assay — "very reliable".
    Ida,
    /// Traceable Author Statement.
    Tas,
    /// Inferred from Genetic Interaction.
    Igi,
    /// Inferred from Mutant Phenotype.
    Imp,
    /// Inferred from Physical Interaction.
    Ipi,
    /// Inferred from Expression Pattern.
    Iep,
    /// Inferred from Sequence or Structural Similarity.
    Iss,
    /// Inferred from Reviewed Computational Analysis.
    Rca,
    /// Inferred by Curator.
    Ic,
    /// Non-traceable Author Statement.
    Nas,
    /// Inferred from Electronic Annotation — "less reliable".
    Iea,
    /// No biological Data available.
    Nd,
    /// Not Recorded.
    Nr,
}

impl EvidenceCode {
    /// All evidence codes, roughly most reliable first.
    pub const ALL: [EvidenceCode; 13] = [
        EvidenceCode::Ida,
        EvidenceCode::Tas,
        EvidenceCode::Igi,
        EvidenceCode::Imp,
        EvidenceCode::Ipi,
        EvidenceCode::Iep,
        EvidenceCode::Iss,
        EvidenceCode::Rca,
        EvidenceCode::Ic,
        EvidenceCode::Nas,
        EvidenceCode::Iea,
        EvidenceCode::Nd,
        EvidenceCode::Nr,
    ];

    /// The expert-elicited `pr` value (paper §2, AmiGO table).
    pub fn pr(self) -> Prob {
        use EvidenceCode::*;
        let v = match self {
            Ida | Tas => 1.0,
            Igi | Imp | Ipi => 0.9,
            Iep | Iss | Rca => 0.7,
            Ic => 0.6,
            Nas => 0.5,
            Iea => 0.3,
            Nd | Nr => 0.2,
        };
        Prob::new(v).expect("table values are valid probabilities")
    }
}

impl fmt::Display for EvidenceCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use EvidenceCode::*;
        let s = match self {
            Ida => "IDA",
            Tas => "TAS",
            Igi => "IGI",
            Imp => "IMP",
            Ipi => "IPI",
            Iep => "IEP",
            Iss => "ISS",
            Rca => "RCA",
            Ic => "IC",
            Nas => "NAS",
            Iea => "IEA",
            Nd => "ND",
            Nr => "NR",
        };
        f.write_str(s)
    }
}

impl FromStr for EvidenceCode {
    type Err = UnknownCode;
    fn from_str(s: &str) -> Result<Self, UnknownCode> {
        use EvidenceCode::*;
        match s {
            "IDA" => Ok(Ida),
            "TAS" => Ok(Tas),
            "IGI" => Ok(Igi),
            "IMP" => Ok(Imp),
            "IPI" => Ok(Ipi),
            "IEP" => Ok(Iep),
            "ISS" => Ok(Iss),
            "RCA" => Ok(Rca),
            "IC" => Ok(Ic),
            "NAS" => Ok(Nas),
            "IEA" => Ok(Iea),
            "ND" => Ok(Nd),
            "NR" => Ok(Nr),
            other => Err(UnknownCode(other.to_string())),
        }
    }
}

/// Error for unknown status/evidence code strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownCode(pub String);

impl fmt::Display for UnknownCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown code {:?}", self.0)
    }
}

impl std::error::Error for UnknownCode {}

/// Transforms a BLAST/HMM e-value into an edge record probability:
/// `qr = −(1/300)·ln(e-value)`, clamped into `[0, 1]` (paper §2).
///
/// Smaller e-values mean stronger matches: `1e-130` maps to ≈1.0,
/// `1e-13` to ≈0.1, and anything ≥ 1 to 0. Non-finite or non-positive
/// inputs map to 0 (no evidence).
pub fn evalue_to_prob(e_value: f64) -> Prob {
    if !e_value.is_finite() || e_value <= 0.0 {
        // A mathematically zero e-value means a perfect match.
        return if e_value == 0.0 {
            Prob::ONE
        } else {
            Prob::ZERO
        };
    }
    // `.max(0.0)` also normalizes the negative zero of −ln(1)/300.
    Prob::clamped((-e_value.ln() / 300.0).max(0.0))
}

/// Inverse of [`evalue_to_prob`] on its non-saturated range, used by the
/// synthetic sources to emit e-values that will transform to a desired
/// probability.
pub fn prob_to_evalue(p: Prob) -> f64 {
    (-300.0 * p.get()).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_code_table_matches_paper() {
        assert_eq!(StatusCode::Reviewed.pr().get(), 1.0);
        assert_eq!(StatusCode::Validated.pr().get(), 0.8);
        assert_eq!(StatusCode::Provisional.pr().get(), 0.7);
        assert_eq!(StatusCode::Predicted.pr().get(), 0.4);
        assert_eq!(StatusCode::Model.pr().get(), 0.3);
        assert_eq!(StatusCode::Inferred.pr().get(), 0.2);
    }

    #[test]
    fn evidence_code_table_matches_paper() {
        assert_eq!(EvidenceCode::Ida.pr().get(), 1.0);
        assert_eq!(EvidenceCode::Tas.pr().get(), 1.0);
        assert_eq!(EvidenceCode::Igi.pr().get(), 0.9);
        assert_eq!(EvidenceCode::Imp.pr().get(), 0.9);
        assert_eq!(EvidenceCode::Ipi.pr().get(), 0.9);
        assert_eq!(EvidenceCode::Iep.pr().get(), 0.7);
        assert_eq!(EvidenceCode::Iss.pr().get(), 0.7);
        assert_eq!(EvidenceCode::Rca.pr().get(), 0.7);
        assert_eq!(EvidenceCode::Ic.pr().get(), 0.6);
        assert_eq!(EvidenceCode::Nas.pr().get(), 0.5);
        assert_eq!(EvidenceCode::Iea.pr().get(), 0.3);
        assert_eq!(EvidenceCode::Nd.pr().get(), 0.2);
        assert_eq!(EvidenceCode::Nr.pr().get(), 0.2);
    }

    #[test]
    fn codes_round_trip_through_strings() {
        for c in StatusCode::ALL {
            assert_eq!(c.to_string().parse::<StatusCode>().unwrap(), c);
        }
        for c in EvidenceCode::ALL {
            assert_eq!(c.to_string().parse::<EvidenceCode>().unwrap(), c);
        }
        assert!("garbage".parse::<StatusCode>().is_err());
        assert!("garbage".parse::<EvidenceCode>().is_err());
    }

    #[test]
    fn status_codes_are_monotone_decreasing() {
        let prs: Vec<f64> = StatusCode::ALL.iter().map(|c| c.pr().get()).collect();
        assert!(prs.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn evalue_transform_basics() {
        // e = 1 ⇒ ln 1 = 0 ⇒ qr = 0
        assert_eq!(evalue_to_prob(1.0).get(), 0.0);
        // e ≥ 1 saturates at 0
        assert_eq!(evalue_to_prob(10.0).get(), 0.0);
        // e = 1e-300 ⇒ qr ≈ ln(1e300)/300 = 2.302... clamped to 1
        assert_eq!(evalue_to_prob(1e-300).get(), 1.0);
        // exact zero = perfect match
        assert_eq!(evalue_to_prob(0.0).get(), 1.0);
        // negative / NaN = no evidence
        assert_eq!(evalue_to_prob(-1.0).get(), 0.0);
        assert_eq!(evalue_to_prob(f64::NAN).get(), 0.0);
    }

    #[test]
    fn evalue_transform_midrange() {
        // e = 1e-65 ⇒ qr = 65·ln(10)/300 ≈ 0.499
        let p = evalue_to_prob(1e-65).get();
        assert!((p - 65.0 * std::f64::consts::LN_10 / 300.0).abs() < 1e-12);
        assert!(p > 0.49 && p < 0.51);
    }

    #[test]
    fn evalue_transform_is_monotone() {
        let evs = [1e-200, 1e-100, 1e-50, 1e-10, 1e-3, 0.5, 1.0];
        let ps: Vec<f64> = evs.iter().map(|&e| evalue_to_prob(e).get()).collect();
        assert!(ps.windows(2).all(|w| w[0] >= w[1]), "{ps:?}");
    }

    #[test]
    fn prob_to_evalue_round_trips() {
        for v in [0.1, 0.35, 0.5, 0.77, 0.95] {
            let p = Prob::new(v).unwrap();
            let e = prob_to_evalue(p);
            let back = evalue_to_prob(e).get();
            assert!((back - v).abs() < 1e-9, "{v} → {e} → {back}");
        }
    }
}
