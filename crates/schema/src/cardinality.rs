//! Relationship cardinalities and their composition algebra (paper §3.1(3)).
//!
//! Theorem 3.2 characterizes reducible E/R schemas through compositions
//! of relationship types: `[1:n] ∘ [1:n] = [1:n]` and `[n:1] ∘ [n:1] =
//! [n:1]` always hold, while `[1:n] ∘ [n:1]` "can be either of [m:n],
//! [n:1], or [1:n], but with domain knowledge we can often determine the
//! type of the composed relationship". [`Cardinality::compose`] encodes
//! the unconditional rules; ambiguous cases return
//! [`Composition::NeedsDomainKnowledge`] and are resolved by the hints
//! mechanism in [`crate::reducible`].

use std::fmt;

use serde::{Deserialize, Serialize};

/// The cardinality type of a binary relationship between entity sets.
///
/// The paper folds `[1:1]` "into one of the latter two" (`[1:n]` or
/// `[n:1]`); we keep it distinct because it composes losslessly on both
/// sides, and fold it only where the theorem requires.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cardinality {
    /// Every left record relates to at most one right record and vice
    /// versa (a key–key cross-reference).
    OneToOne,
    /// One left record fans out to many right records.
    OneToMany,
    /// Many left records converge on one right record.
    ManyToOne,
    /// Unrestricted.
    ManyToMany,
}

/// Result of composing two cardinalities.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Composition {
    /// The composition is always of this type, no domain knowledge needed.
    Always(Cardinality),
    /// `[1:n] ∘ [n:1]`: could be `[1:n]`, `[n:1]` or `[m:n]` depending on
    /// the data; a domain-knowledge hint must disambiguate.
    NeedsDomainKnowledge,
}

impl Cardinality {
    /// Composes `self ∘ other` (self's right side joins other's left).
    ///
    /// Unconditional rules:
    /// * `1:1` is the identity on either side.
    /// * `[1:n] ∘ [1:n] = [1:n]`, `[n:1] ∘ [n:1] = [n:1]`.
    /// * `[n:1] ∘ [1:n]` and anything involving `[m:n]` is `[m:n]`
    ///   (fanning in then out, or unrestricted, loses all constraints).
    /// * `[1:n] ∘ [n:1]` is ambiguous.
    pub fn compose(self, other: Cardinality) -> Composition {
        use Cardinality::*;
        match (self, other) {
            (OneToOne, x) | (x, OneToOne) => Composition::Always(x),
            (OneToMany, OneToMany) => Composition::Always(OneToMany),
            (ManyToOne, ManyToOne) => Composition::Always(ManyToOne),
            (OneToMany, ManyToOne) => Composition::NeedsDomainKnowledge,
            (ManyToOne, OneToMany) => Composition::Always(ManyToMany),
            (ManyToMany, _) | (_, ManyToMany) => Composition::Always(ManyToMany),
        }
    }

    /// The cardinality of the relationship read right-to-left.
    #[must_use]
    pub fn reversed(self) -> Cardinality {
        use Cardinality::*;
        match self {
            OneToMany => ManyToOne,
            ManyToOne => OneToMany,
            x => x,
        }
    }

    /// `true` for the "functional towards the right" types `[n:1]`/`[1:1]`
    /// (each left record has at most one right partner).
    pub fn is_functional(self) -> bool {
        matches!(self, Cardinality::ManyToOne | Cardinality::OneToOne)
    }

    /// Folds `[1:1]` into `[n:1]` as the theorem statement allows.
    #[must_use]
    pub fn folded(self) -> Cardinality {
        match self {
            Cardinality::OneToOne => Cardinality::ManyToOne,
            x => x,
        }
    }
}

impl fmt::Display for Cardinality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cardinality::OneToOne => "[1:1]",
            Cardinality::OneToMany => "[1:n]",
            Cardinality::ManyToOne => "[n:1]",
            Cardinality::ManyToMany => "[m:n]",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Cardinality::*;

    #[test]
    fn one_to_one_is_identity() {
        for x in [OneToOne, OneToMany, ManyToOne, ManyToMany] {
            assert_eq!(OneToOne.compose(x), Composition::Always(x));
            assert_eq!(x.compose(OneToOne), Composition::Always(x));
        }
    }

    #[test]
    fn paper_composition_rules() {
        // [1:n] ∘ [1:n] = [1:n]
        assert_eq!(OneToMany.compose(OneToMany), Composition::Always(OneToMany));
        // [n:1] ∘ [n:1] = [n:1]
        assert_eq!(ManyToOne.compose(ManyToOne), Composition::Always(ManyToOne));
        // [1:n] ∘ [n:1] is ambiguous
        assert_eq!(
            OneToMany.compose(ManyToOne),
            Composition::NeedsDomainKnowledge
        );
    }

    #[test]
    fn fan_in_then_out_is_many_to_many() {
        assert_eq!(
            ManyToOne.compose(OneToMany),
            Composition::Always(ManyToMany)
        );
    }

    #[test]
    fn many_to_many_absorbs() {
        for x in [OneToMany, ManyToOne, ManyToMany] {
            assert_eq!(ManyToMany.compose(x), Composition::Always(ManyToMany));
            assert_eq!(x.compose(ManyToMany), Composition::Always(ManyToMany));
        }
    }

    #[test]
    fn reversed_swaps_direction() {
        assert_eq!(OneToMany.reversed(), ManyToOne);
        assert_eq!(ManyToOne.reversed(), OneToMany);
        assert_eq!(OneToOne.reversed(), OneToOne);
        assert_eq!(ManyToMany.reversed(), ManyToMany);
    }

    #[test]
    fn functional_classification() {
        assert!(ManyToOne.is_functional());
        assert!(OneToOne.is_functional());
        assert!(!OneToMany.is_functional());
        assert!(!ManyToMany.is_functional());
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(OneToMany.to_string(), "[1:n]");
        assert_eq!(ManyToMany.to_string(), "[m:n]");
    }

    #[test]
    fn folding_collapses_one_to_one_only() {
        assert_eq!(OneToOne.folded(), ManyToOne);
        assert_eq!(OneToMany.folded(), OneToMany);
    }
}
