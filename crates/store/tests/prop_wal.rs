//! Crash-recovery property: for *any* sequence of admin ops, any
//! checkpoint position, and any byte-level truncation of the WAL tail
//! (a crash mid-append), recovery replays to exactly the state
//! produced by semantically applying the checkpointed prefix plus the
//! surviving WAL records — never a panic, never a corrupt manifest,
//! never a resurrected evicted world.

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use biorank_obs::MetricsRegistry;
use biorank_store::{RecoveredWorld, StoredSpec, WalOp, WorldStore, WAL_FILE};
use proptest::prelude::*;

/// (tag, world, seed): the raw material of one op. Generations are
/// assigned sequentially during application, like the live registry.
type RawOp = (u8, u8, u8);

fn spec(seed: u8) -> StoredSpec {
    StoredSpec {
        seed: u64::from(seed),
        extended: seed % 2 == 0,
        cache_capacity: u64::from(seed % 5) * 4,
    }
}

fn world_name(w: u8) -> String {
    // Include a char that needs escaping so file naming is exercised.
    format!("w/{}", w % 4)
}

fn materialize(raw: &[RawOp]) -> Vec<WalOp> {
    let mut generation = 0u64;
    raw.iter()
        .map(|&(tag, w, s)| match tag % 3 {
            0 => {
                generation += 1;
                WalOp::Load {
                    world: world_name(w),
                    spec: spec(s),
                    generation,
                }
            }
            1 => {
                generation += 1;
                WalOp::Swap {
                    world: world_name(w),
                    spec: spec(s),
                    generation,
                }
            }
            _ => WalOp::Evict {
                world: world_name(w),
            },
        })
        .collect()
}

/// The semantic model: what the registry state must be after `ops`.
fn apply(ops: &[WalOp]) -> (u64, BTreeMap<String, (StoredSpec, u64)>) {
    let mut next_generation = 0u64;
    let mut worlds = BTreeMap::new();
    for op in ops {
        match op {
            WalOp::Load {
                world,
                spec,
                generation,
            }
            | WalOp::Swap {
                world,
                spec,
                generation,
            } => {
                next_generation = next_generation.max(generation + 1);
                worlds.insert(world.clone(), (*spec, *generation));
            }
            WalOp::Evict { world } => {
                worlds.remove(world);
            }
        }
    }
    (next_generation, worlds)
}

fn fresh_dir() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "biorank-prop-wal-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn any_prefix_recovers_consistently(
        raw in proptest::collection::vec((0u8..=2, 0u8..=5, 0u8..=9), 0..=16),
        checkpoint_at in 0usize..=16,
        cut in 0usize..=64,
    ) {
        let ops = materialize(&raw);
        let checkpoint_at = checkpoint_at.min(ops.len());
        let dir = fresh_dir();
        let registry = MetricsRegistry::new();
        let store = WorldStore::open(&dir, &registry).unwrap();

        // Acknowledge the first `checkpoint_at` ops, checkpoint (the
        // manifest absorbs them), then acknowledge the rest.
        for op in &ops[..checkpoint_at] {
            store.append(op).unwrap();
        }
        let (next_generation, state) = apply(&ops[..checkpoint_at]);
        let mut manifest = WorldStore::manifest_from_worlds(
            next_generation,
            state
                .iter()
                .map(|(name, (spec, generation))| (name.as_str(), *spec, *generation, None)),
        );
        store.checkpoint(&mut manifest).unwrap();
        for op in &ops[checkpoint_at..] {
            store.append(op).unwrap();
        }

        // Crash: chop `cut` bytes off the WAL tail (clamped to its
        // size). Compute which post-checkpoint records survive.
        let wal_path = dir.join(WAL_FILE);
        let wal_bytes = fs::read(&wal_path).unwrap();
        let keep = wal_bytes.len().saturating_sub(cut);
        fs::write(&wal_path, &wal_bytes[..keep]).unwrap();
        let mut survive = checkpoint_at;
        let mut offset = 0usize;
        for op in &ops[checkpoint_at..] {
            // Record framing: 4-byte len + 8-byte checksum + payload.
            offset += 12 + op.encode().len();
            if offset <= keep {
                survive += 1;
            } else {
                break;
            }
        }

        // Recover as a fresh process would.
        drop(store);
        let store = WorldStore::open(&dir, &registry).unwrap();
        let recovery = store.recover().unwrap();
        let (want_next, want_worlds) = apply(&ops[..survive]);

        prop_assert_eq!(recovery.wal_ops_replayed, survive - checkpoint_at);
        prop_assert_eq!(recovery.next_generation, want_next);
        let got: BTreeMap<String, (StoredSpec, u64)> = recovery
            .worlds
            .iter()
            .map(|(name, RecoveredWorld { spec, generation, .. })| {
                (name.clone(), (*spec, *generation))
            })
            .collect();
        prop_assert_eq!(&got, &want_worlds);

        // Recovery must be idempotent: a second recover (a second
        // crash before any new ops) sees the same state.
        prop_assert_eq!(store.recover().unwrap().worlds, recovery.worlds);
        let _ = fs::remove_dir_all(&dir);
    }
}
