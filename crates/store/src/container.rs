//! The checksummed container file format and its atomic writer.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic (per file kind, see [`FileKind`])
//! 4       4     format version (currently 1)
//! 8       8     payload length in bytes
//! 16      8     xxh64(payload, seed = CHECKSUM_SEED)
//! 24      len   payload
//! ```
//!
//! Writes go through a temp file + fsync + rename + directory fsync,
//! so a crash at any point leaves either the previous container or
//! the new one — never a torn hybrid. Reads verify magic, version,
//! length, and checksum before handing the payload back.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

use crate::{xxh64, StoreError};

/// Current container format version.
pub const CONTAINER_VERSION: u32 = 1;

/// Seed for the container payload checksum.
pub(crate) const CHECKSUM_SEED: u64 = 0xB10_5708E; // "BIO STORE"

const HEADER_LEN: usize = 24;

/// The kind of a container file, selecting its 4-byte magic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// A per-world snapshot (`BRSN`).
    Snapshot,
    /// The resident-world manifest (`BRMF`).
    Manifest,
}

impl FileKind {
    fn magic(self) -> [u8; 4] {
        match self {
            FileKind::Snapshot => *b"BRSN",
            FileKind::Manifest => *b"BRMF",
        }
    }
}

/// Atomically writes `payload` as a container file at `path`:
/// temp file in the same directory, fsync, rename over the target,
/// fsync the directory. Returns the total file size in bytes.
pub fn write_container(path: &Path, kind: FileKind, payload: &[u8]) -> crate::Result<u64> {
    let mut framed = Vec::with_capacity(HEADER_LEN + payload.len());
    framed.extend_from_slice(&kind.magic());
    framed.extend_from_slice(&CONTAINER_VERSION.to_le_bytes());
    framed.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    framed.extend_from_slice(&xxh64(payload, CHECKSUM_SEED).to_le_bytes());
    framed.extend_from_slice(payload);

    let dir = path.parent().ok_or_else(|| {
        StoreError::Corrupt(format!("container path {} has no parent", path.display()))
    })?;
    let tmp = path.with_extension("tmp");
    {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(&framed)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // Persist the rename itself: fsync the containing directory.
    File::open(dir)?.sync_all()?;
    Ok(framed.len() as u64)
}

/// Reads and verifies a container file, returning its payload.
pub fn read_container(path: &Path, kind: FileKind) -> crate::Result<Vec<u8>> {
    let mut raw = Vec::new();
    File::open(path)?.read_to_end(&mut raw)?;
    if raw.len() < HEADER_LEN {
        return Err(StoreError::Corrupt(format!(
            "{}: {} bytes is shorter than the container header",
            path.display(),
            raw.len()
        )));
    }
    if raw[0..4] != kind.magic() {
        return Err(StoreError::Corrupt(format!(
            "{}: bad magic {:?}",
            path.display(),
            &raw[0..4]
        )));
    }
    let version = u32::from_le_bytes(raw[4..8].try_into().unwrap());
    if version != CONTAINER_VERSION {
        return Err(StoreError::Corrupt(format!(
            "{}: unsupported format version {version}",
            path.display()
        )));
    }
    let len = u64::from_le_bytes(raw[8..16].try_into().unwrap());
    let sum = u64::from_le_bytes(raw[16..24].try_into().unwrap());
    let payload = &raw[HEADER_LEN..];
    if payload.len() as u64 != len {
        return Err(StoreError::Corrupt(format!(
            "{}: payload is {} bytes, header says {len}",
            path.display(),
            payload.len()
        )));
    }
    if xxh64(payload, CHECKSUM_SEED) != sum {
        return Err(StoreError::Corrupt(format!(
            "{}: checksum mismatch",
            path.display()
        )));
    }
    Ok(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "biorank-store-container-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trip() {
        let dir = tmpdir("rt");
        let path = dir.join("world.snap");
        let payload = b"snapshot payload \x00\x01\x02".to_vec();
        let size = write_container(&path, FileKind::Snapshot, &payload).unwrap();
        assert_eq!(size, HEADER_LEN as u64 + payload.len() as u64);
        assert_eq!(read_container(&path, FileKind::Snapshot).unwrap(), payload);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn overwrite_replaces_previous_contents() {
        let dir = tmpdir("ow");
        let path = dir.join("m");
        write_container(&path, FileKind::Manifest, b"one").unwrap();
        write_container(&path, FileKind::Manifest, b"two").unwrap();
        assert_eq!(read_container(&path, FileKind::Manifest).unwrap(), b"two");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_kind_rejected() {
        let dir = tmpdir("kind");
        let path = dir.join("f");
        write_container(&path, FileKind::Snapshot, b"x").unwrap();
        assert!(matches!(
            read_container(&path, FileKind::Manifest),
            Err(StoreError::Corrupt(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_detected() {
        let dir = tmpdir("bits");
        let path = dir.join("f");
        write_container(&path, FileKind::Snapshot, b"important payload").unwrap();
        // Flip one payload bit on disk.
        let mut raw = fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0x10;
        fs::write(&path, &raw).unwrap();
        assert!(matches!(
            read_container(&path, FileKind::Snapshot),
            Err(StoreError::Corrupt(_))
        ));
        // Truncation is also caught.
        fs::write(&path, &raw[..raw.len() - 3]).unwrap();
        assert!(read_container(&path, FileKind::Snapshot).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
