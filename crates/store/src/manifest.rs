//! The resident-world manifest: the compacted, authoritative record of
//! which worlds a data directory holds, their specs and generations,
//! and which snapshot file (if any) backs each one. The WAL is a delta
//! on top of the most recent manifest; [`crate::WorldStore::recover`]
//! folds the two back together.

use crate::bytes::{Reader, Writer};

/// A world build spec as persisted on disk. This mirrors the serving
/// layer's `WorldSpec` without depending on it — the store crate sits
/// below the service and only needs a stable, encodable record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoredSpec {
    /// World-generation seed.
    pub seed: u64,
    /// Whether the extended federation (full schema) is enabled.
    pub extended: bool,
    /// Per-layer result cache capacity.
    pub cache_capacity: u64,
}

impl StoredSpec {
    pub(crate) fn encode(&self, w: &mut Writer) {
        w.u64(self.seed);
        w.bool(self.extended);
        w.u64(self.cache_capacity);
    }

    pub(crate) fn decode(r: &mut Reader<'_>) -> crate::Result<Self> {
        Ok(Self {
            seed: r.u64()?,
            extended: r.bool()?,
            cache_capacity: r.u64()?,
        })
    }
}

/// One resident world in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// World name (registry key).
    pub name: String,
    /// The spec the world was built from.
    pub spec: StoredSpec,
    /// The generation counter the world held when recorded.
    pub generation: u64,
    /// Snapshot file name inside the data directory, if one was saved.
    pub snapshot: Option<String>,
}

/// The decoded manifest: the next generation to hand out plus every
/// resident world, sorted by name for stable round trips.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// The registry's next unassigned generation counter.
    pub next_generation: u64,
    /// Resident worlds.
    pub worlds: Vec<ManifestEntry>,
}

impl Manifest {
    /// Encodes the manifest into a container payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(self.next_generation);
        w.u64(self.worlds.len() as u64);
        for entry in &self.worlds {
            w.str(&entry.name);
            entry.spec.encode(&mut w);
            w.u64(entry.generation);
            match &entry.snapshot {
                Some(file) => {
                    w.bool(true);
                    w.str(file);
                }
                None => w.bool(false),
            }
        }
        w.into_inner()
    }

    /// Decodes a manifest from a verified container payload.
    pub fn decode(payload: &[u8]) -> crate::Result<Self> {
        let mut r = Reader::new(payload);
        let next_generation = r.u64()?;
        let count = r.u64()?;
        let mut worlds = Vec::new();
        for _ in 0..count {
            let name = r.str()?;
            let spec = StoredSpec::decode(&mut r)?;
            let generation = r.u64()?;
            let snapshot = if r.bool()? { Some(r.str()?) } else { None };
            worlds.push(ManifestEntry {
                name,
                spec,
                generation,
                snapshot,
            });
        }
        r.finish()?;
        Ok(Self {
            next_generation,
            worlds,
        })
    }

    /// Sorts entries by world name — called before encoding so byte
    /// output is independent of registry iteration order.
    pub fn normalize(&mut self) {
        self.worlds.sort_by(|a, b| a.name.cmp(&b.name));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            next_generation: 9,
            worlds: vec![
                ManifestEntry {
                    name: "default".into(),
                    spec: StoredSpec {
                        seed: 0xB10_C0DE,
                        extended: true,
                        cache_capacity: 512,
                    },
                    generation: 1,
                    snapshot: Some("default.snap".into()),
                },
                ManifestEntry {
                    name: "staging/w2".into(),
                    spec: StoredSpec {
                        seed: 42,
                        extended: false,
                        cache_capacity: 0,
                    },
                    generation: 8,
                    snapshot: None,
                },
            ],
        }
    }

    #[test]
    fn round_trip() {
        let m = sample();
        assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn empty_round_trip() {
        let m = Manifest::default();
        assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn normalize_is_stable() {
        let mut a = sample();
        a.worlds.reverse();
        a.normalize();
        let mut b = sample();
        b.normalize();
        assert_eq!(a.encode(), b.encode());
    }

    #[test]
    fn truncated_payload_rejected() {
        let raw = sample().encode();
        for cut in [0, 1, raw.len() / 2, raw.len() - 1] {
            assert!(Manifest::decode(&raw[..cut]).is_err(), "cut {cut} accepted");
        }
    }
}
