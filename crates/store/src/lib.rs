//! # biorank-store
//!
//! Durable world persistence for the BioRank serving layer: versioned,
//! checksummed binary snapshots of resident worlds, a directory
//! manifest of what is resident, and an append-only admin write-ahead
//! log so a `biorank serve --data-dir` restart comes back warm instead
//! of rebuilding every world from scratch.
//!
//! Like the rest of the workspace this crate is dependency-free by
//! design (the container builds offline; `vendor/serde` is a marker
//! stand-in with no codegen), so all encodings are hand-rolled
//! little-endian binary with an [XXH64](xxh::xxh64) integrity checksum.
//!
//! ## On-disk layout
//!
//! A data directory managed by [`WorldStore`] contains:
//!
//! ```text
//! <data-dir>/
//!   MANIFEST            container file, magic "BRMF" — resident-world manifest
//!   wal.log             append-only framed record log of admin ops
//!   <world>.snap        container file, magic "BRSN" — per-world snapshot payload
//! ```
//!
//! World names are percent-escaped ([`escape_name`]) to form safe
//! snapshot file names.
//!
//! ## Container file format
//!
//! Every container file ([`write_container`]/[`read_container`]) is:
//!
//! ```text
//! [magic: 4 bytes][version: u32 LE][len: u64 LE][xxh64(payload): u64 LE][payload: len bytes]
//! ```
//!
//! Containers are written atomically: payload goes to `<name>.tmp`,
//! the file is fsync'd, renamed over the target, and the directory is
//! fsync'd — a crash mid-write never leaves a torn container behind.
//! A bad magic, unknown version, short file, or checksum mismatch is
//! reported as [`StoreError::Corrupt`].
//!
//! ## WAL record format
//!
//! The WAL (`wal.log`) is a sequence of self-delimiting records:
//!
//! ```text
//! [len: u32 LE][xxh64(payload): u64 LE][payload: len bytes]
//! ```
//!
//! each payload being one encoded [`WalOp`]. Appends are fsync'd
//! before the admin op is acknowledged. Replay
//! ([`WorldStore::recover`]) stops at the first torn or
//! checksum-failing record, so a crash mid-append loses at most the
//! unacknowledged tail — never previously acknowledged ops.
//! [`WorldStore::checkpoint`] compacts the log: it atomically rewrites
//! the manifest to the current registry state and truncates the WAL.
//!
//! ## Telemetry
//!
//! Store operations publish `store.{snapshot_write,snapshot_load,`
//! `wal_append,wal_replay,checkpoint}` counters plus
//! `store.snapshot_bytes` / `store.load_ns` histograms into the
//! [`MetricsRegistry`](biorank_obs::MetricsRegistry) handed to
//! [`WorldStore::open`], so persistence activity shows up in the same
//! `metrics` admin op as the query path.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bytes;
pub mod codec;
pub mod container;
pub mod manifest;
pub mod store;
pub mod wal;
pub mod xxh;

pub use bytes::{Reader, Writer};
pub use codec::{decode_query_graph, encode_query_graph};
pub use container::{read_container, write_container, FileKind, CONTAINER_VERSION};
pub use manifest::{Manifest, ManifestEntry, StoredSpec};
pub use store::{escape_name, RecoveredWorld, Recovery, WorldStore, MANIFEST_FILE, WAL_FILE};
pub use wal::WalOp;
pub use xxh::xxh64;

use std::fmt;

/// Errors produced by the persistence layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// Filesystem-level failure.
    Io(std::io::Error),
    /// A file or record failed structural or checksum validation.
    Corrupt(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store io: {e}"),
            StoreError::Corrupt(msg) => write!(f, "store corrupt: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Corrupt(_) => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Shorthand result type for store operations.
pub type Result<T> = std::result::Result<T, StoreError>;
