//! Little-endian byte-buffer primitives shared by every persisted
//! encoding. The workspace's `vendor/serde` is a no-op marker stand-in
//! (the container builds offline), so all snapshot/WAL payloads are
//! hand-rolled through these two types instead of derive codegen.

use crate::StoreError;

/// An append-only byte buffer with typed little-endian writers.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `bool` as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Appends a `u32` little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its exact IEEE-754 bit pattern. Round
    /// trips are bit-identical, which is what makes reloaded
    /// snapshots answer queries exactly like the pre-restart world.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a length-prefixed byte slice (`u64` length + raw bytes).
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Consumes the writer, returning the encoded buffer.
    pub fn into_inner(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// A cursor over an encoded buffer with typed little-endian readers.
/// Every read is bounds-checked; running off the end or hitting an
/// invalid value yields [`StoreError::Corrupt`] instead of panicking,
/// so a truncated or damaged file surfaces as a recoverable error.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> crate::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| {
                StoreError::Corrupt(format!(
                    "short read: wanted {n} bytes at offset {} of {}",
                    self.pos,
                    self.buf.len()
                ))
            })?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> crate::Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `bool` encoded as one byte; anything but 0/1 is corrupt.
    pub fn bool(&mut self) -> crate::Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(StoreError::Corrupt(format!("invalid bool byte {b}"))),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> crate::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> crate::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` from its exact bit pattern.
    pub fn f64(&mut self) -> crate::Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed byte slice.
    pub fn bytes(&mut self) -> crate::Result<&'a [u8]> {
        let len = self.u64()?;
        let len = usize::try_from(len)
            .ok()
            .filter(|&len| len <= self.buf.len())
            .ok_or_else(|| StoreError::Corrupt(format!("implausible length {len}")))?;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> crate::Result<String> {
        let raw = self.bytes()?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| StoreError::Corrupt("invalid UTF-8 string".into()))
    }

    /// Bytes left unread.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the cursor has consumed the whole buffer.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Fails unless the buffer was consumed exactly — trailing bytes
    /// in a checksummed payload mean an encoder/decoder mismatch.
    pub fn finish(self) -> crate::Result<()> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(StoreError::Corrupt(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut w = Writer::new();
        w.u8(0xAB);
        w.bool(true);
        w.bool(false);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.f64(-0.0);
        w.f64(f64::MIN_POSITIVE);
        w.bytes(b"raw\x00bytes");
        w.str("protein — GALT");
        let buf = w.into_inner();

        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64().unwrap(), f64::MIN_POSITIVE);
        assert_eq!(r.bytes().unwrap(), b"raw\x00bytes");
        assert_eq!(r.str().unwrap(), "protein — GALT");
        r.finish().unwrap();
    }

    #[test]
    fn short_reads_are_corrupt_not_panics() {
        let mut r = Reader::new(&[1, 2, 3]);
        assert!(r.u64().is_err());
        let mut w = Writer::new();
        w.str("hello");
        let buf = w.into_inner();
        let mut r = Reader::new(&buf[..buf.len() - 1]);
        assert!(r.str().is_err());
    }

    #[test]
    fn implausible_length_rejected() {
        let mut w = Writer::new();
        w.u64(u64::MAX); // a length prefix no buffer can satisfy
        let buf = w.into_inner();
        assert!(Reader::new(&buf).bytes().is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut w = Writer::new();
        w.u8(1);
        w.u8(2);
        let buf = w.into_inner();
        let mut r = Reader::new(&buf);
        r.u8().unwrap();
        assert!(r.finish().is_err());
    }

    #[test]
    fn invalid_bool_rejected() {
        let mut r = Reader::new(&[7]);
        assert!(r.bool().is_err());
    }
}
