//! Slot-preserving binary codec for [`QueryGraph`]s.
//!
//! Integrated query graphs arrive *pruned*: node slots removed by
//! `QueryGraph::prune` are tombstoned, and the surviving `NodeId`s —
//! which key the record map, the answer set, and every score vector —
//! are sparse. A decoded graph must therefore reproduce the exact
//! slot layout, not just the live structure:
//!
//! * every node **slot** up to `node_bound` is encoded (alive flag,
//!   probability bits, label), so rebuilt `NodeId`s are numerically
//!   identical;
//! * live edges are encoded in slot order, which preserves both the
//!   global `edges()` iteration order and every per-node adjacency
//!   order (insertion-ordered, `retain`-pruned) — the two orders that
//!   determine Monte Carlo draw sequences.
//!
//! Payload layout:
//!
//! ```text
//! [node_bound: u64]
//!   node_bound × [alive: u8][p: f64 bits][label: str]   (dead: p = 0)
//! [edge_count: u64]
//!   edge_count × [src: u64][dst: u64][q: f64 bits]
//! [source: u64]
//! [answers: u64 count, count × u64]
//! ```
//!
//! Decoding rebuilds every slot, adds the live edges, then re-removes
//! the dead slots — leaving a graph whose live queries are
//! bit-identical to the original under every estimator.

use biorank_graph::{NodeId, Prob, ProbGraph, QueryGraph};

use crate::bytes::{Reader, Writer};
use crate::StoreError;

/// Encodes a query graph into `w` (slot-preserving, see module docs).
pub fn encode_query_graph(q: &QueryGraph, w: &mut Writer) {
    let g = q.graph();
    w.u64(g.node_bound() as u64);
    for i in 0..g.node_bound() {
        let n = NodeId::from_index(i);
        let alive = g.node_alive(n);
        w.bool(alive);
        w.f64(if alive { g.node_p(n).get() } else { 0.0 });
        w.str(g.node_label(n));
    }
    w.u64(g.edge_count() as u64);
    for e in g.edges() {
        let (src, dst, prob) = g.edge(e);
        w.u64(src.index() as u64);
        w.u64(dst.index() as u64);
        w.f64(prob.get());
    }
    w.u64(q.source().index() as u64);
    w.u64(q.answers().len() as u64);
    for &a in q.answers() {
        w.u64(a.index() as u64);
    }
}

fn prob(v: f64) -> crate::Result<Prob> {
    Prob::new(v).map_err(|e| StoreError::Corrupt(format!("invalid probability: {e}")))
}

fn node_index(r: &mut Reader<'_>, bound: usize) -> crate::Result<NodeId> {
    let i = r.u64()?;
    let i = usize::try_from(i)
        .ok()
        .filter(|&i| i < bound)
        .ok_or_else(|| StoreError::Corrupt(format!("node index {i} out of bound {bound}")))?;
    Ok(NodeId::from_index(i))
}

/// Decodes a query graph from `r` (the inverse of
/// [`encode_query_graph`]).
pub fn decode_query_graph(r: &mut Reader<'_>) -> crate::Result<QueryGraph> {
    let node_bound = r.u64()?;
    let node_bound = usize::try_from(node_bound)
        .ok()
        .filter(|&n| n <= u32::MAX as usize)
        .ok_or_else(|| StoreError::Corrupt(format!("implausible node bound {node_bound}")))?;
    let mut g = ProbGraph::with_capacity(node_bound, 0);
    let mut dead = Vec::new();
    for i in 0..node_bound {
        let alive = r.bool()?;
        let p = r.f64()?;
        let label = r.str()?;
        let n = g.add_labeled_node(if alive { prob(p)? } else { Prob::ZERO }, label);
        debug_assert_eq!(n.index(), i);
        if !alive {
            dead.push(n);
        }
    }
    let edge_count = r.u64()?;
    for _ in 0..edge_count {
        let src = node_index(r, node_bound)?;
        let dst = node_index(r, node_bound)?;
        let q = prob(r.f64()?)?;
        g.add_edge(src, dst, q)
            .map_err(|e| StoreError::Corrupt(format!("invalid edge: {e}")))?;
    }
    // Re-tombstone the dead slots *after* the edges went in: live
    // edges never touch dead endpoints (add_edge above would have
    // rejected them anyway, since dead slots are still alive at that
    // point only as placeholders with no incident edges).
    for n in dead {
        g.remove_node(n);
    }
    let source = node_index(r, node_bound)?;
    let answers_len = r.u64()?;
    let answers_len = usize::try_from(answers_len)
        .ok()
        .filter(|&n| n <= node_bound)
        .ok_or_else(|| StoreError::Corrupt(format!("implausible answer count {answers_len}")))?;
    let mut answers = Vec::with_capacity(answers_len);
    for _ in 0..answers_len {
        answers.push(node_index(r, node_bound)?);
    }
    QueryGraph::new(g, source, answers)
        .map_err(|e| StoreError::Corrupt(format!("invalid query graph: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a pruned query graph with tombstoned slots, the shape
    /// the mediator actually caches.
    fn pruned_graph() -> QueryGraph {
        let mut g = ProbGraph::new();
        let s = g.add_labeled_node(Prob::ONE, "query");
        let a = g.add_labeled_node(Prob::new(0.9).unwrap(), "protein GALT");
        let orphan = g.add_labeled_node(Prob::new(0.3).unwrap(), "unreachable");
        let b = g.add_labeled_node(Prob::new(0.75).unwrap(), "function");
        let dead_end = g.add_labeled_node(Prob::new(0.5).unwrap(), "dead end");
        g.add_edge(s, a, Prob::new(0.8).unwrap()).unwrap();
        g.add_edge(a, b, Prob::new(0.6).unwrap()).unwrap();
        g.add_edge(s, dead_end, Prob::HALF).unwrap();
        g.add_edge(orphan, b, Prob::HALF).unwrap();
        let mut q = QueryGraph::new(g, s, vec![a, b]).unwrap();
        // Prune tombstones `orphan` (unreachable from s) and
        // `dead_end` (reaches no answer), leaving sparse NodeIds.
        q.prune();
        assert!(q.graph().node_count() < q.graph().node_bound());
        q
    }

    fn encode(q: &QueryGraph) -> Vec<u8> {
        let mut w = Writer::new();
        encode_query_graph(q, &mut w);
        w.into_inner()
    }

    #[test]
    fn round_trip_preserves_slots_and_structure() {
        let q = pruned_graph();
        let buf = encode(&q);
        let mut r = Reader::new(&buf);
        let back = decode_query_graph(&mut r).unwrap();
        r.finish().unwrap();

        let (g0, g1) = (q.graph(), back.graph());
        assert_eq!(back.source(), q.source());
        assert_eq!(back.answers(), q.answers());
        assert_eq!(g1.node_bound(), g0.node_bound());
        assert_eq!(g1.node_count(), g0.node_count());
        assert_eq!(g1.edge_count(), g0.edge_count());
        for i in 0..g0.node_bound() {
            let n = NodeId::from_index(i);
            assert_eq!(g1.node_alive(n), g0.node_alive(n), "slot {i}");
            assert_eq!(g1.node_label(n), g0.node_label(n), "slot {i}");
            if g0.node_alive(n) {
                assert_eq!(g1.node_p(n).get().to_bits(), g0.node_p(n).get().to_bits());
                // Adjacency order drives MC draw order: must match
                // exactly as (dst, q) sequences.
                let adj = |g: &ProbGraph, n| {
                    g.out_edges(n)
                        .map(|e| {
                            let (_, d, p) = g.edge(e);
                            (d, p.get().to_bits())
                        })
                        .collect::<Vec<_>>()
                };
                assert_eq!(adj(g1, n), adj(g0, n), "out-adjacency of slot {i}");
            }
        }
        // Global edge iteration yields identical (src, dst, q) order.
        let all = |g: &ProbGraph| {
            g.edges()
                .map(|e| {
                    let (s, d, p) = g.edge(e);
                    (s, d, p.get().to_bits())
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(all(g1), all(g0));
        g1.check_invariants();
        // And a re-encode is byte-identical: the codec is a fixpoint.
        assert_eq!(encode(&back), buf);
    }

    #[test]
    fn unpruned_graph_round_trips_too() {
        let mut g = ProbGraph::new();
        let s = g.add_labeled_node(Prob::ONE, "query");
        let t = g.add_labeled_node(Prob::new(0.25).unwrap(), "t");
        g.add_edge(s, t, Prob::new(0.125).unwrap()).unwrap();
        let q = QueryGraph::new(g, s, vec![t]).unwrap();
        let buf = encode(&q);
        let back = decode_query_graph(&mut Reader::new(&buf)).unwrap();
        assert_eq!(encode(&back), buf);
    }

    #[test]
    fn truncations_and_corruptions_rejected() {
        let buf = encode(&pruned_graph());
        for cut in [0, 3, buf.len() / 3, buf.len() - 1] {
            assert!(
                decode_query_graph(&mut Reader::new(&buf[..cut])).is_err(),
                "cut {cut} accepted"
            );
        }
        // An out-of-bound node index in the edge list is corrupt, not
        // a panic.
        let mut bad = buf.clone();
        // node_bound sits in the first 8 bytes; shrink it to 1 so
        // every later index is out of bounds.
        bad[..8].copy_from_slice(&1u64.to_le_bytes());
        assert!(decode_query_graph(&mut Reader::new(&bad)).is_err());
    }
}
