//! [`WorldStore`] — the directory-level durability manager gluing the
//! pieces together: manifest + WAL recovery on open, fsync'd WAL
//! appends, checkpoint compaction, and per-world snapshot files.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use biorank_obs::{Counter, Histogram, MetricsRegistry};

use crate::container::{read_container, write_container, FileKind};
use crate::manifest::{Manifest, ManifestEntry, StoredSpec};
use crate::wal::{frame_record, replay_records, WalOp};
use crate::StoreError;

/// Manifest file name inside a data directory.
pub const MANIFEST_FILE: &str = "MANIFEST";
/// WAL file name inside a data directory.
pub const WAL_FILE: &str = "wal.log";

/// Percent-escapes a world name into a filesystem-safe snapshot stem:
/// ASCII alphanumerics plus `.`, `_`, `-` pass through, everything
/// else becomes `%XX` per byte. Injective, so distinct world names
/// never collide on disk.
pub fn escape_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for &b in name.as_bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'.' | b'_' | b'-' => out.push(b as char),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// The effective state recovered from a data directory: the manifest
/// with the surviving WAL suffix folded in.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Recovery {
    /// Next generation the registry should hand out.
    pub next_generation: u64,
    /// Resident worlds by name, with the generation each held and the
    /// snapshot file (if any) recorded for it at the last checkpoint.
    pub worlds: BTreeMap<String, RecoveredWorld>,
    /// How many WAL records were replayed on top of the manifest.
    pub wal_ops_replayed: usize,
}

/// One world recovered from manifest + WAL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredWorld {
    /// Build spec to reconstruct the world from.
    pub spec: StoredSpec,
    /// The generation the world held pre-crash.
    pub generation: u64,
    /// Snapshot file name, when a checkpoint saved one for this spec.
    pub snapshot: Option<String>,
}

struct StoreMetrics {
    snapshot_write: Arc<Counter>,
    snapshot_load: Arc<Counter>,
    wal_append: Arc<Counter>,
    wal_replay: Arc<Counter>,
    checkpoint: Arc<Counter>,
    snapshot_bytes: Arc<Histogram>,
    load_ns: Arc<Histogram>,
}

impl StoreMetrics {
    fn new(registry: &MetricsRegistry) -> Self {
        Self {
            snapshot_write: registry.counter("store.snapshot_write"),
            snapshot_load: registry.counter("store.snapshot_load"),
            wal_append: registry.counter("store.wal_append"),
            wal_replay: registry.counter("store.wal_replay"),
            checkpoint: registry.counter("store.checkpoint"),
            snapshot_bytes: registry.histogram("store.snapshot_bytes"),
            load_ns: registry.histogram("store.load_ns"),
        }
    }
}

/// A durable world store rooted at one data directory.
pub struct WorldStore {
    dir: PathBuf,
    wal: Mutex<File>,
    metrics: StoreMetrics,
}

impl std::fmt::Debug for WorldStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorldStore")
            .field("dir", &self.dir)
            .finish()
    }
}

impl WorldStore {
    /// Opens (creating if needed) a data directory, and opens the WAL
    /// for appending. Persistence telemetry is published into
    /// `registry` under `store.*` names.
    pub fn open(dir: impl Into<PathBuf>, registry: &MetricsRegistry) -> crate::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let wal = OpenOptions::new()
            .append(true)
            .create(true)
            .open(dir.join(WAL_FILE))?;
        Ok(Self {
            dir,
            wal: Mutex::new(wal),
            metrics: StoreMetrics::new(registry),
        })
    }

    /// The data directory this store manages.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Recovers the effective registry state: loads the manifest (if
    /// any), then folds in every surviving WAL record. A torn WAL
    /// tail truncates silently — those ops were never acknowledged.
    pub fn recover(&self) -> crate::Result<Recovery> {
        let manifest_path = self.dir.join(MANIFEST_FILE);
        let manifest = if manifest_path.exists() {
            Manifest::decode(&read_container(&manifest_path, FileKind::Manifest)?)?
        } else {
            Manifest::default()
        };

        let mut worlds: BTreeMap<String, RecoveredWorld> = BTreeMap::new();
        let mut next_generation = manifest.next_generation;
        for entry in manifest.worlds {
            worlds.insert(
                entry.name,
                RecoveredWorld {
                    spec: entry.spec,
                    generation: entry.generation,
                    snapshot: entry.snapshot,
                },
            );
        }

        let raw = {
            // Hold the WAL lock across the read so recovery never
            // races a concurrent append into seeing half a record.
            let _wal = self.wal.lock().unwrap();
            let mut raw = Vec::new();
            File::open(self.dir.join(WAL_FILE))?.read_to_end(&mut raw)?;
            raw
        };
        let ops = replay_records(&raw);
        self.metrics.wal_replay.add(ops.len() as u64);
        let replayed = ops.len();
        for op in ops {
            match op {
                WalOp::Load {
                    world,
                    spec,
                    generation,
                }
                | WalOp::Swap {
                    world,
                    spec,
                    generation,
                } => {
                    next_generation = next_generation.max(generation + 1);
                    worlds.insert(
                        world,
                        RecoveredWorld {
                            spec,
                            generation,
                            // Any snapshot on disk predates this op's
                            // spec change only if the spec differs;
                            // keep the pointer and let the loader
                            // verify the spec before trusting it.
                            snapshot: None,
                        },
                    );
                }
                WalOp::Evict { world } => {
                    worlds.remove(&world);
                }
            }
        }
        // Re-attach snapshot pointers for worlds whose file exists and
        // was not invalidated by a later spec change above.
        for (name, world) in worlds.iter_mut() {
            if world.snapshot.is_none() {
                let file = format!("{}.snap", escape_name(name));
                if self.dir.join(&file).exists() {
                    world.snapshot = Some(file);
                }
            }
        }
        Ok(Recovery {
            next_generation,
            worlds,
            wal_ops_replayed: replayed,
        })
    }

    /// Appends one admin op to the WAL and fsyncs before returning.
    /// Callers acknowledge the op to the client only after this
    /// succeeds.
    pub fn append(&self, op: &WalOp) -> crate::Result<()> {
        let record = frame_record(op);
        let mut wal = self.wal.lock().unwrap();
        wal.write_all(&record)?;
        wal.sync_data()?;
        self.metrics.wal_append.inc();
        Ok(())
    }

    /// Checkpoints the registry state: writes `manifest` atomically,
    /// then truncates the WAL (its ops are now folded into the
    /// manifest). Crash ordering is safe at every point — before the
    /// manifest rename the old manifest + full WAL reconstruct the
    /// same state; after it the WAL is redundant until truncated.
    pub fn checkpoint(&self, manifest: &mut Manifest) -> crate::Result<()> {
        manifest.normalize();
        write_container(
            &self.dir.join(MANIFEST_FILE),
            FileKind::Manifest,
            &manifest.encode(),
        )?;
        let wal = self.wal.lock().unwrap();
        wal.set_len(0)?;
        wal.sync_data()?;
        self.metrics.checkpoint.inc();
        Ok(())
    }

    /// Writes a world snapshot payload atomically, returning the
    /// snapshot file name (manifest-relative) and its size in bytes.
    pub fn save_snapshot(&self, world: &str, payload: &[u8]) -> crate::Result<(String, u64)> {
        let file = format!("{}.snap", escape_name(world));
        let bytes = write_container(&self.dir.join(&file), FileKind::Snapshot, payload)?;
        self.metrics.snapshot_write.inc();
        self.metrics.snapshot_bytes.record(bytes);
        Ok((file, bytes))
    }

    /// Reads and verifies a snapshot file, returning its payload.
    pub fn load_snapshot(&self, file: &str) -> crate::Result<Vec<u8>> {
        let start = Instant::now();
        let payload = read_container(&self.dir.join(file), FileKind::Snapshot)?;
        self.metrics.snapshot_load.inc();
        self.metrics
            .load_ns
            .record(start.elapsed().as_nanos() as u64);
        Ok(payload)
    }

    /// Removes the snapshot file for `world`, if present. Called on
    /// evict so a later world under the same name cannot resurrect
    /// stale cached results.
    pub fn remove_snapshot(&self, world: &str) -> crate::Result<()> {
        let path = self.dir.join(format!("{}.snap", escape_name(world)));
        match fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(StoreError::Io(e)),
        }
    }

    /// Builds a manifest from recovered or live registry state.
    pub fn manifest_from_worlds<'a>(
        next_generation: u64,
        worlds: impl IntoIterator<Item = (&'a str, StoredSpec, u64, Option<String>)>,
    ) -> Manifest {
        let mut manifest = Manifest {
            next_generation,
            worlds: worlds
                .into_iter()
                .map(|(name, spec, generation, snapshot)| ManifestEntry {
                    name: name.to_string(),
                    spec,
                    generation,
                    snapshot,
                })
                .collect(),
        };
        manifest.normalize();
        manifest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> MetricsRegistry {
        MetricsRegistry::new()
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("biorank-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn spec(seed: u64) -> StoredSpec {
        StoredSpec {
            seed,
            extended: false,
            cache_capacity: 8,
        }
    }

    #[test]
    fn escape_name_is_injective_and_safe() {
        for name in ["default", "a/b", "a%b", "../../etc", "w–2", "a b"] {
            let escaped = escape_name(name);
            assert!(
                escaped
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() | matches!(b, b'.' | b'_' | b'-' | b'%')),
                "{escaped}"
            );
            assert!(!escaped.contains('/'));
        }
        assert_ne!(escape_name("a/b"), escape_name("a%2Fb"));
        assert_eq!(escape_name("world-1.x"), "world-1.x");
    }

    #[test]
    fn fresh_directory_recovers_empty() {
        let dir = tmpdir("fresh");
        let reg = registry();
        let store = WorldStore::open(&dir, &reg).unwrap();
        let rec = store.recover().unwrap();
        assert_eq!(rec, Recovery::default());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_appends_survive_reopen() {
        let dir = tmpdir("wal");
        let reg = registry();
        {
            let store = WorldStore::open(&dir, &reg).unwrap();
            store
                .append(&WalOp::Load {
                    world: "default".into(),
                    spec: spec(1),
                    generation: 1,
                })
                .unwrap();
            store
                .append(&WalOp::Load {
                    world: "w2".into(),
                    spec: spec(2),
                    generation: 2,
                })
                .unwrap();
            store.append(&WalOp::Evict { world: "w2".into() }).unwrap();
        }
        let store = WorldStore::open(&dir, &reg).unwrap();
        let rec = store.recover().unwrap();
        assert_eq!(rec.wal_ops_replayed, 3);
        assert_eq!(rec.next_generation, 3);
        assert_eq!(rec.worlds.len(), 1);
        assert_eq!(rec.worlds["default"].spec, spec(1));
        assert_eq!(rec.worlds["default"].generation, 1);
        assert_eq!(reg.snapshot().counters["store.wal_replay"], 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_compacts_wal_into_manifest() {
        let dir = tmpdir("ckpt");
        let reg = registry();
        let store = WorldStore::open(&dir, &reg).unwrap();
        store
            .append(&WalOp::Load {
                world: "default".into(),
                spec: spec(7),
                generation: 1,
            })
            .unwrap();
        let mut manifest = WorldStore::manifest_from_worlds(
            2,
            [("default", spec(7), 1, Some("default.snap".to_string()))],
        );
        store.checkpoint(&mut manifest).unwrap();
        assert_eq!(fs::metadata(dir.join(WAL_FILE)).unwrap().len(), 0);

        let rec = store.recover().unwrap();
        assert_eq!(rec.wal_ops_replayed, 0);
        assert_eq!(rec.next_generation, 2);
        assert_eq!(rec.worlds["default"].generation, 1);
        // Snapshot pointer survives in the manifest even though the
        // file itself was never written in this test.
        assert_eq!(
            rec.worlds["default"].snapshot.as_deref(),
            Some("default.snap")
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_op_after_checkpoint_clears_stale_snapshot_pointer() {
        let dir = tmpdir("stale");
        let reg = registry();
        let store = WorldStore::open(&dir, &reg).unwrap();
        let mut manifest = WorldStore::manifest_from_worlds(
            2,
            [("default", spec(7), 1, Some("missing.snap".to_string()))],
        );
        store.checkpoint(&mut manifest).unwrap();
        // A post-checkpoint swap changes the spec; the old snapshot
        // pointer must not survive (and the file doesn't exist).
        store
            .append(&WalOp::Swap {
                world: "default".into(),
                spec: spec(8),
                generation: 5,
            })
            .unwrap();
        let rec = store.recover().unwrap();
        assert_eq!(rec.worlds["default"].spec, spec(8));
        assert_eq!(rec.worlds["default"].generation, 5);
        assert_eq!(rec.worlds["default"].snapshot, None);
        assert_eq!(rec.next_generation, 6);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_save_load_remove() {
        let dir = tmpdir("snap");
        let reg = registry();
        let store = WorldStore::open(&dir, &reg).unwrap();
        let payload = vec![42u8; 1000];
        let (file, bytes) = store.save_snapshot("my/world", &payload).unwrap();
        assert_eq!(file, "my%2Fworld.snap");
        assert!(bytes > 1000);
        assert_eq!(store.load_snapshot(&file).unwrap(), payload);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["store.snapshot_write"], 1);
        assert_eq!(snap.counters["store.snapshot_load"], 1);
        assert_eq!(snap.histograms["store.snapshot_bytes"].count, 1);
        assert_eq!(snap.histograms["store.load_ns"].count, 1);
        store.remove_snapshot("my/world").unwrap();
        assert!(store.load_snapshot(&file).is_err());
        // Removing again is a no-op, not an error.
        store.remove_snapshot("my/world").unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_wal_tail_loses_only_unacked_op() {
        let dir = tmpdir("torn");
        let reg = registry();
        let store = WorldStore::open(&dir, &reg).unwrap();
        store
            .append(&WalOp::Load {
                world: "default".into(),
                spec: spec(1),
                generation: 1,
            })
            .unwrap();
        store
            .append(&WalOp::Load {
                world: "w2".into(),
                spec: spec(2),
                generation: 2,
            })
            .unwrap();
        // Simulate a crash mid-append: chop bytes off the tail.
        let wal_path = dir.join(WAL_FILE);
        let raw = fs::read(&wal_path).unwrap();
        fs::write(&wal_path, &raw[..raw.len() - 5]).unwrap();
        let store = WorldStore::open(&dir, &reg).unwrap();
        let rec = store.recover().unwrap();
        assert_eq!(rec.wal_ops_replayed, 1);
        assert!(rec.worlds.contains_key("default"));
        assert!(!rec.worlds.contains_key("w2"));
        let _ = fs::remove_dir_all(&dir);
    }
}
