//! A from-scratch implementation of the XXH64 hash (Yann Collet's
//! xxHash, 64-bit variant) used as the integrity checksum for every
//! persisted payload. Not cryptographic — it guards against torn
//! writes and bit rot, not adversaries.

const P1: u64 = 0x9E37_79B1_85EB_CA87;
const P2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const P3: u64 = 0x1656_67B1_9E37_79F9;
const P4: u64 = 0x85EB_CA77_C2B2_AE63;
const P5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline]
fn read_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().unwrap())
}

#[inline]
fn read_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b[..4].try_into().unwrap())
}

#[inline]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(P2))
        .rotate_left(31)
        .wrapping_mul(P1)
}

#[inline]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val)).wrapping_mul(P1).wrapping_add(P4)
}

/// Computes the XXH64 hash of `data` under `seed`.
pub fn xxh64(data: &[u8], seed: u64) -> u64 {
    let len = data.len() as u64;
    let mut input = data;
    let mut h = if input.len() >= 32 {
        let mut v1 = seed.wrapping_add(P1).wrapping_add(P2);
        let mut v2 = seed.wrapping_add(P2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(P1);
        while input.len() >= 32 {
            v1 = round(v1, read_u64(&input[0..8]));
            v2 = round(v2, read_u64(&input[8..16]));
            v3 = round(v3, read_u64(&input[16..24]));
            v4 = round(v4, read_u64(&input[24..32]));
            input = &input[32..];
        }
        let mut h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        merge_round(h, v4)
    } else {
        seed.wrapping_add(P5)
    };
    h = h.wrapping_add(len);
    while input.len() >= 8 {
        h ^= round(0, read_u64(input));
        h = h.rotate_left(27).wrapping_mul(P1).wrapping_add(P4);
        input = &input[8..];
    }
    if input.len() >= 4 {
        h ^= u64::from(read_u32(input)).wrapping_mul(P1);
        h = h.rotate_left(23).wrapping_mul(P2).wrapping_add(P3);
        input = &input[4..];
    }
    for &b in input {
        h ^= u64::from(b).wrapping_mul(P5);
        h = h.rotate_left(11).wrapping_mul(P1);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(P2);
    h ^= h >> 29;
    h = h.wrapping_mul(P3);
    h ^ (h >> 32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_reference_vector() {
        // The canonical XXH64 test vector: hash of the empty string.
        assert_eq!(xxh64(b"", 0), 0xEF46_DB37_51D8_E999);
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let data = b"the quick brown fox jumps over the lazy dog";
        assert_eq!(xxh64(data, 0), xxh64(data, 0));
        assert_ne!(xxh64(data, 0), xxh64(data, 1));
        assert_ne!(xxh64(data, 0), xxh64(&data[..data.len() - 1], 0));
    }

    #[test]
    fn covers_every_tail_length() {
        // Exercise the 32-byte stripe loop plus all tail branches
        // (>=8, >=4, byte-at-a-time): lengths 0..=67 must all hash to
        // distinct values for a counting byte pattern.
        let data: Vec<u8> = (0u8..=67).collect();
        let mut seen = std::collections::HashSet::new();
        for len in 0..=data.len() {
            assert!(
                seen.insert(xxh64(&data[..len], 7)),
                "collision at len {len}"
            );
        }
    }

    #[test]
    fn single_bit_flip_changes_hash() {
        let mut data = vec![0xA5u8; 64];
        let base = xxh64(&data, 0);
        for byte in 0..data.len() {
            data[byte] ^= 1;
            assert_ne!(xxh64(&data, 0), base, "flip at byte {byte} undetected");
            data[byte] ^= 1;
        }
    }
}
