//! The admin write-ahead log: every registry mutation
//! (`load`/`swap`/`evict`) is recorded here and fsync'd *before* the
//! op is acknowledged to the client, so an acknowledged op survives
//! any crash. Record framing:
//!
//! ```text
//! [len: u32 LE][xxh64(payload): u64 LE][payload: len bytes]
//! ```
//!
//! Replay walks records until the buffer ends or a record fails
//! (short header, short payload, checksum mismatch) — a torn tail
//! from a crash mid-append silently truncates to the last good
//! record, which is exactly the set of ops that were acknowledged.

use crate::bytes::{Reader, Writer};
use crate::manifest::StoredSpec;
use crate::{xxh64, StoreError};

/// Seed for WAL record checksums (distinct from the container seed so
/// a WAL record pasted into a container body never verifies).
const WAL_SEED: u64 = 0x57A1_10C0;

const RECORD_HEADER: usize = 12;

/// Maximum accepted record payload — a sanity bound so a corrupt
/// length prefix cannot trigger a giant allocation.
const MAX_RECORD: u32 = 16 * 1024 * 1024;

/// One durable admin operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// A world was loaded under `generation`.
    Load {
        /// Registry key.
        world: String,
        /// Build spec.
        spec: StoredSpec,
        /// Generation assigned at install.
        generation: u64,
    },
    /// A world was swapped to a new spec under `generation`.
    Swap {
        /// Registry key.
        world: String,
        /// The replacement spec.
        spec: StoredSpec,
        /// Generation assigned at install.
        generation: u64,
    },
    /// A world was evicted (explicitly or by LRU pressure).
    Evict {
        /// Registry key.
        world: String,
    },
}

const TAG_LOAD: u8 = 1;
const TAG_SWAP: u8 = 2;
const TAG_EVICT: u8 = 3;

impl WalOp {
    /// Encodes the op payload (without record framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            WalOp::Load {
                world,
                spec,
                generation,
            } => {
                w.u8(TAG_LOAD);
                w.str(world);
                spec.encode(&mut w);
                w.u64(*generation);
            }
            WalOp::Swap {
                world,
                spec,
                generation,
            } => {
                w.u8(TAG_SWAP);
                w.str(world);
                spec.encode(&mut w);
                w.u64(*generation);
            }
            WalOp::Evict { world } => {
                w.u8(TAG_EVICT);
                w.str(world);
            }
        }
        w.into_inner()
    }

    /// Decodes one op payload.
    pub fn decode(payload: &[u8]) -> crate::Result<Self> {
        let mut r = Reader::new(payload);
        let op = match r.u8()? {
            TAG_LOAD => WalOp::Load {
                world: r.str()?,
                spec: StoredSpec::decode(&mut r)?,
                generation: r.u64()?,
            },
            TAG_SWAP => WalOp::Swap {
                world: r.str()?,
                spec: StoredSpec::decode(&mut r)?,
                generation: r.u64()?,
            },
            TAG_EVICT => WalOp::Evict { world: r.str()? },
            tag => return Err(StoreError::Corrupt(format!("unknown WAL op tag {tag}"))),
        };
        r.finish()?;
        Ok(op)
    }

    /// The world this op targets.
    pub fn world(&self) -> &str {
        match self {
            WalOp::Load { world, .. } | WalOp::Swap { world, .. } | WalOp::Evict { world } => world,
        }
    }
}

/// Frames an op as one on-disk WAL record.
pub(crate) fn frame_record(op: &WalOp) -> Vec<u8> {
    let payload = op.encode();
    let mut out = Vec::with_capacity(RECORD_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&xxh64(&payload, WAL_SEED).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Replays a raw WAL buffer, returning every op up to (excluding) the
/// first torn or corrupt record. Never errors: a damaged tail is the
/// expected shape of a crash mid-append, and everything before it was
/// acknowledged and must be applied.
pub(crate) fn replay_records(mut buf: &[u8]) -> Vec<WalOp> {
    let mut ops = Vec::new();
    loop {
        if buf.len() < RECORD_HEADER {
            return ops; // torn or absent header
        }
        let len = u32::from_le_bytes(buf[0..4].try_into().unwrap());
        if len > MAX_RECORD {
            return ops; // corrupt length prefix
        }
        let sum = u64::from_le_bytes(buf[4..12].try_into().unwrap());
        let len = len as usize;
        if buf.len() < RECORD_HEADER + len {
            return ops; // torn payload
        }
        let payload = &buf[RECORD_HEADER..RECORD_HEADER + len];
        if xxh64(payload, WAL_SEED) != sum {
            return ops; // bit-flipped record: stop, don't skip
        }
        match WalOp::decode(payload) {
            Ok(op) => ops.push(op),
            Err(_) => return ops,
        }
        buf = &buf[RECORD_HEADER + len..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops() -> Vec<WalOp> {
        let spec = |seed| StoredSpec {
            seed,
            extended: false,
            cache_capacity: 8,
        };
        vec![
            WalOp::Load {
                world: "default".into(),
                spec: spec(1),
                generation: 1,
            },
            WalOp::Load {
                world: "w2".into(),
                spec: spec(2),
                generation: 2,
            },
            WalOp::Swap {
                world: "w2".into(),
                spec: spec(3),
                generation: 3,
            },
            WalOp::Evict { world: "w2".into() },
        ]
    }

    #[test]
    fn op_round_trip() {
        for op in ops() {
            assert_eq!(WalOp::decode(&op.encode()).unwrap(), op);
        }
    }

    #[test]
    fn replay_full_log() {
        let mut buf = Vec::new();
        for op in ops() {
            buf.extend_from_slice(&frame_record(&op));
        }
        assert_eq!(replay_records(&buf), ops());
    }

    #[test]
    fn replay_stops_at_torn_tail() {
        let mut buf = Vec::new();
        for op in ops() {
            buf.extend_from_slice(&frame_record(&op));
        }
        let full = replay_records(&buf).len();
        // Any truncation strictly inside the last record loses only
        // that record.
        let last = frame_record(ops().last().unwrap()).len();
        for cut in 1..last {
            let got = replay_records(&buf[..buf.len() - cut]);
            assert_eq!(got.len(), full - 1, "cut {cut}");
            assert_eq!(got, ops()[..full - 1]);
        }
    }

    #[test]
    fn replay_stops_at_bit_flip() {
        let mut buf = Vec::new();
        for op in ops() {
            buf.extend_from_slice(&frame_record(&op));
        }
        // Corrupt a byte inside the second record's payload.
        let first = frame_record(&ops()[0]).len();
        buf[first + RECORD_HEADER + 2] ^= 0x40;
        assert_eq!(replay_records(&buf), ops()[..1]);
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(WalOp::decode(&[99]).is_err());
    }
}
