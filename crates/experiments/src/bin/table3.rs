//! Table 3: the 11 hypothetical proteins, their expert-validated
//! function, and the rank each method assigns it (tie intervals).
//! "Clearly, reliability and propagation perform better than
//! deterministic rankings."

use biorank_eval::report::table;
use biorank_eval::{build_cases, Scenario};
use biorank_experiments::{default_world, figure_rankers, rank_intervals};
use biorank_sources::paper_data::TABLE3;

fn main() {
    let world = default_world();
    let cases = build_cases(&world, Scenario::Hypothetical).expect("integration succeeds");
    let rankers = figure_rankers();

    let mut rows: Vec<Vec<String>> = Vec::new();
    for case in &cases {
        let row3 = TABLE3
            .iter()
            .find(|r| r.protein == case.protein)
            .expect("table3 protein");
        let key = biorank_sources::GoTerm(row3.go).to_string();
        let mut row = vec![case.protein.clone(), key.clone()];
        let mut n = 0usize;
        for ranker in &rankers {
            let (intervals, total) = rank_intervals(ranker.as_ref(), case, &[&key]);
            row.push(intervals[0].clone());
            n = total;
        }
        row.push(format!("1-{n}"));
        rows.push(row);
    }
    println!(
        "{}",
        table(
            &["Protein", "Function", "Rel", "Prop", "Diff", "InEdge", "PathC", "Random"],
            &rows
        )
    );
}
