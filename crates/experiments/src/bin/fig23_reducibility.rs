//! Figs. 2–3: reducible vs irreducible schema shapes, checked both at
//! the schema level (Theorem 3.2) and at the data level (do the three
//! rewrite rules fully collapse a concrete instance?).

use biorank_graph::{reduction, Prob};
use biorank_schema::{check_reducible, Cardinality, ComposeHints, Schema};

fn chain(cards: &[Cardinality]) -> (Schema, biorank_schema::EntitySetId) {
    let mut s = Schema::new();
    let ids: Vec<_> = (0..=cards.len())
        .map(|i| s.entity(&format!("P{i}"), "x", &[], 1.0).expect("entity"))
        .collect();
    for (i, &c) in cards.iter().enumerate() {
        s.relationship(&format!("q{i}{}", i + 1), ids[i], ids[i + 1], c, 1.0)
            .expect("relationship");
    }
    (s, ids[0])
}

fn verdict(s: &Schema, root: biorank_schema::EntitySetId, hints: &ComposeHints) -> &'static str {
    if check_reducible(s, root, hints).is_reducible() {
        "reducible"
    } else {
        "not derivably reducible"
    }
}

fn main() {
    use Cardinality::*;
    println!("Fig. 2a  0-[1:n]-1-[n:m]-2-[n:1]-3:");
    let (s, root) = chain(&[OneToMany, ManyToMany, ManyToOne]);
    println!("  schema: {}", verdict(&s, root, &ComposeHints::none()));

    println!("Fig. 2b  0-[1:n]-1-[1:n]-2-[n:1]-3-[n:1]-4:");
    let (s, root) = chain(&[OneToMany, OneToMany, ManyToOne, ManyToOne]);
    println!("  schema: {}", verdict(&s, root, &ComposeHints::none()));

    println!("Fig. 2c  Wheatstone bridge (data level):");
    let (g, src, t) = reduction::wheatstone(Prob::HALF);
    match reduction::closed_form(g, src, t) {
        reduction::ClosedForm::Stuck { nodes, edges } => {
            println!("  reduction rules stuck at {nodes} nodes / {edges} edges (irreducible)")
        }
        reduction::ClosedForm::Solved(r) => println!("  unexpectedly solved: r = {r}"),
    }

    println!("Fig. 2d  0-[1:n]-1-[n:m]-2-[n:1]-3 with domain knowledge:");
    let (s, root) = chain(&[OneToMany, ManyToMany, ManyToOne]);
    // "some [n:m] can actually be reduced": per-answer view retypes the
    // final relation; here we emulate Fig 2d's annotation by declaring
    // the ambiguous composition resolvable.
    let mut hints = ComposeHints::none();
    hints.declare("q01", "q12", OneToMany);
    println!(
        "  schema (still blocked by true [n:m] mid-chain): {}",
        verdict(&s, root, &hints)
    );

    println!("Fig. 3a  0-[1:n]-1-[n:1]-2-[1:n]-3-[n:1]-4-[1:n]-5 with hints:");
    let (s, root) = chain(&[OneToMany, ManyToOne, OneToMany, ManyToOne, OneToMany]);
    let mut hints = ComposeHints::none();
    hints.declare("q01", "q12", OneToMany);
    hints.declare("q23", "q34", ManyToOne);
    hints.declare("q01∘q12", "q23∘q34", OneToMany);
    println!("  schema: {}", verdict(&s, root, &hints));

    println!("Fig. 3b  same chain, first composition known to be [m:n]:");
    let mut hints = ComposeHints::none();
    hints.declare("q01", "q12", ManyToMany);
    hints.declare("q23", "q34", ManyToOne);
    println!("  schema: {}", verdict(&s, root, &hints));
}
