//! Fig. 4: the five relevance scoring functions on the two illustrative
//! topologies.
//!
//! (a) serial-parallel graph — s →(0.5) m, then two certain 2-hop paths
//!     to u. Paper: PathCount 2, InEdge 2, Reliability 0.5,
//!     Propagation 0.75, Diffusion 0.11.
//! (b) Wheatstone bridge, all edges 0.5. Paper: PathCount 3, InEdge 2,
//!     Reliability 0.469, Propagation 0.484, Diffusion ≈ 0.11 (the
//!     printed equations give 1/6 ≈ 0.167; see EXPERIMENTS.md).

use biorank_eval::report::table;
use biorank_graph::{reduction, NodeId, Prob, ProbGraph, QueryGraph};
use biorank_rank::{ClosedReliability, Diffusion, InEdge, PathCount, Propagation, Ranker};

fn fig4a() -> (QueryGraph, NodeId) {
    let p = |v: f64| Prob::new(v).expect("valid");
    let mut g = ProbGraph::new();
    let s = g.add_labeled_node(p(1.0), "s");
    let m = g.add_labeled_node(p(1.0), "m");
    let a = g.add_labeled_node(p(1.0), "a");
    let b = g.add_labeled_node(p(1.0), "b");
    let u = g.add_labeled_node(p(1.0), "u");
    g.add_edge(s, m, p(0.5)).expect("edge");
    g.add_edge(m, a, p(1.0)).expect("edge");
    g.add_edge(m, b, p(1.0)).expect("edge");
    g.add_edge(a, u, p(1.0)).expect("edge");
    g.add_edge(b, u, p(1.0)).expect("edge");
    (QueryGraph::new(g, s, vec![u]).expect("query"), u)
}

fn fig4b() -> (QueryGraph, NodeId) {
    let (g, s, t) = reduction::wheatstone(Prob::HALF);
    (QueryGraph::new(g, s, vec![t]).expect("query"), t)
}

fn score_row(q: &QueryGraph, u: NodeId) -> Vec<String> {
    let rel = ClosedReliability::default().score(q).expect("rel").get(u);
    let prop = Propagation::auto().score(q).expect("prop").get(u);
    let diff = Diffusion::auto().score(q).expect("diff").get(u);
    let inedge = InEdge.score(q).expect("inedge").get(u);
    let pathc = PathCount.score(q).expect("pathc").get(u);
    vec![
        format!("{rel:.3}"),
        format!("{prop:.3}"),
        format!("{diff:.3}"),
        format!("{inedge:.0}"),
        format!("{pathc:.0}"),
    ]
}

fn main() {
    let (qa, ua) = fig4a();
    let (qb, ub) = fig4b();
    let mut rows = vec![];
    let mut row_a = vec!["(a) serial-parallel".to_string()];
    row_a.extend(score_row(&qa, ua));
    rows.push(row_a);
    let mut row_b = vec!["(b) Wheatstone bridge".to_string()];
    row_b.extend(score_row(&qb, ub));
    rows.push(row_b);
    println!(
        "{}",
        table(
            &["Topology", "Rel", "Prop", "Diff", "InEdge", "PathC"],
            &rows
        )
    );
    println!("Paper (a): Rel 0.5, Prop 0.75, Diff 0.11, InEdge 2, PathC 2");
    println!("Paper (b): Rel 0.469, Prop 0.484, Diff 0.11*, InEdge 2, PathC 3");
    println!("* the printed diffusion equations evaluate to 1/6 on (b).");
}
