//! Fig. 8: efficiency of query evaluation on the 20 scenario-1 query
//! graphs.
//!
//! (a) Reliability strategies: M1 = traversal MC 10000 trials,
//!     M2 = traversal MC 1000 trials, C = closed solution (reductions +
//!     factoring fallback), and each preceded by graph reduction (R&).
//!     Also reported: the naive-MC baseline (the paper's 3.4× claim),
//!     the average graph shrinkage from reductions (the −78% claim),
//!     and — beyond the paper — W1/W2, the word-parallel engine that
//!     propagates 64 trials per bitmask pass.
//! (b) The five ranking methods (reliability = R&M2, the paper's
//!     benchmark configuration) plus the word-parallel reliability
//!     engine at M1's trial count for comparison.
//!
//! Absolute times are machine-specific; the orderings are the result.

use std::time::Instant;

/// A named scoring closure timed over the scenario cases.
type Timed<'a> = (&'a str, Box<dyn Fn(&ScenarioCase)>);

use biorank_eval::report::table;
use biorank_eval::{build_cases, Scenario, ScenarioCase};
use biorank_experiments::{default_world, DEFAULT_SEED};
use biorank_graph::reduction;
use biorank_rank::{
    ClosedReliability, Diffusion, InEdge, NaiveMc, PathCount, Propagation, Ranker, ReducedMc,
    TraversalMc, WordMc,
};

/// Mean wall-clock milliseconds of `f` over all cases, repeated
/// `reps` times each.
fn time_ms(cases: &[ScenarioCase], reps: usize, mut f: impl FnMut(&ScenarioCase)) -> f64 {
    // Warm-up pass.
    for case in cases {
        f(case);
    }
    let start = Instant::now();
    for _ in 0..reps {
        for case in cases {
            f(case);
        }
    }
    start.elapsed().as_secs_f64() * 1000.0 / (reps * cases.len()) as f64
}

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3);
    let world = default_world();
    let cases = build_cases(&world, Scenario::WellKnown).expect("integration succeeds");

    let avg_nodes: f64 = cases
        .iter()
        .map(|c| c.result.query.graph().node_count() as f64)
        .sum::<f64>()
        / cases.len() as f64;
    let avg_edges: f64 = cases
        .iter()
        .map(|c| c.result.query.graph().edge_count() as f64)
        .sum::<f64>()
        / cases.len() as f64;
    println!("20 query graphs: avg {avg_nodes:.0} nodes, {avg_edges:.0} edges");

    // Reduction shrinkage (the paper's −78% on raw integration graphs;
    // our mediator already prunes dead branches during integration, so
    // we report both the rule-only and the combined shrinkage).
    let mut rule_shrink = Vec::new();
    let mut combined_shrink = Vec::new();
    for case in &cases {
        let mut q = case.result.query.clone();
        let src = q.source();
        let answers = q.answers().to_vec();
        let stats = reduction::reduce(q.graph_mut(), src, &answers);
        rule_shrink.push(stats.shrink_ratio());
        let raw = (case.result.stats.nodes_raw + case.result.stats.edges_raw) as f64;
        let after = (stats.nodes_after + stats.edges_after) as f64;
        combined_shrink.push(1.0 - after / raw);
    }
    let avg = |v: &[f64]| 100.0 * v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "reduction rules remove {:.0}% of the pruned graphs; prune+reduce \
         removes {:.0}% of the raw integration graphs (paper: 78%)\n",
        avg(&rule_shrink),
        avg(&combined_shrink)
    );

    // (a) reliability strategies.
    let strategies: Vec<Timed<'_>> = vec![
        (
            "naive M1",
            Box::new(|c: &ScenarioCase| {
                let _ = NaiveMc::new(10_000, DEFAULT_SEED).score(&c.result.query);
            }),
        ),
        (
            "M1",
            Box::new(|c: &ScenarioCase| {
                let _ = TraversalMc::new(10_000, DEFAULT_SEED).score(&c.result.query);
            }),
        ),
        (
            "M2",
            Box::new(|c: &ScenarioCase| {
                let _ = TraversalMc::new(1_000, DEFAULT_SEED).score(&c.result.query);
            }),
        ),
        (
            "C",
            Box::new(|c: &ScenarioCase| {
                let _ = ClosedReliability::default().score(&c.result.query);
            }),
        ),
        (
            "R&M1",
            Box::new(|c: &ScenarioCase| {
                let _ = ReducedMc::new(10_000, DEFAULT_SEED).score(&c.result.query);
            }),
        ),
        (
            "R&M2",
            Box::new(|c: &ScenarioCase| {
                let _ = ReducedMc::new(1_000, DEFAULT_SEED).score(&c.result.query);
            }),
        ),
        (
            "W1",
            Box::new(|c: &ScenarioCase| {
                let _ = WordMc::new(10_000, DEFAULT_SEED).score(&c.result.query);
            }),
        ),
        (
            "W2",
            Box::new(|c: &ScenarioCase| {
                let _ = WordMc::new(1_000, DEFAULT_SEED).score(&c.result.query);
            }),
        ),
    ];
    let mut rows = Vec::new();
    let mut naive_ms = 0.0;
    let mut m1_ms = 0.0;
    let mut rm1_ms = 0.0;
    let mut w1_ms = 0.0;
    for (name, f) in &strategies {
        let ms = time_ms(&cases, reps, |c| f(c));
        match *name {
            "naive M1" => naive_ms = ms,
            "M1" => m1_ms = ms,
            "R&M1" => rm1_ms = ms,
            "W1" => w1_ms = ms,
            _ => {}
        }
        rows.push(vec![name.to_string(), format!("{ms:.2}")]);
    }
    println!("(a) Reliability strategies (mean msec per query graph):");
    println!("{}", table(&["Method", "Time [ms]"], &rows));
    println!(
        "traversal-vs-naive speed-up: {:.1}x (paper: 3.4x); reduction+MC vs naive: {:.1}x (paper: 13.4x)",
        naive_ms / m1_ms,
        naive_ms / rm1_ms
    );
    println!(
        "word-parallel vs traversal at 10000 trials: {:.1}x; vs naive: {:.1}x\n",
        m1_ms / w1_ms,
        naive_ms / w1_ms
    );

    // (b) the five ranking methods.
    let methods: Vec<Timed<'_>> = vec![
        (
            "Rel",
            Box::new(|c: &ScenarioCase| {
                let _ = ReducedMc::new(1_000, DEFAULT_SEED).score(&c.result.query);
            }),
        ),
        (
            "Prop",
            Box::new(|c: &ScenarioCase| {
                let _ = Propagation::auto().score(&c.result.query);
            }),
        ),
        (
            "Diff",
            Box::new(|c: &ScenarioCase| {
                let _ = Diffusion::auto().score(&c.result.query);
            }),
        ),
        (
            "InEdge",
            Box::new(|c: &ScenarioCase| {
                let _ = InEdge.score(&c.result.query);
            }),
        ),
        (
            "PathC",
            Box::new(|c: &ScenarioCase| {
                let _ = PathCount.score(&c.result.query);
            }),
        ),
        (
            "Rel(word M1)",
            Box::new(|c: &ScenarioCase| {
                let _ = WordMc::new(10_000, DEFAULT_SEED).score(&c.result.query);
            }),
        ),
    ];
    let mut rows = Vec::new();
    for (name, f) in &methods {
        let ms = time_ms(&cases, reps, |c| f(c));
        rows.push(vec![name.to_string(), format!("{ms:.3}")]);
    }
    println!("(b) The five ranking methods (mean msec per query graph):");
    println!("{}", table(&["Method", "Time [ms]"], &rows));
}
