//! §2 motivating example: the top of the ranked answer list for
//! `(EntrezProtein.name = "ABCC8", AmiGO)` under the reliability
//! semantics, mirroring the five-row table printed in the paper
//! (sulphonylurea receptor activity at r ≈ 0.70, etc. — our absolute
//! scores differ, the well-known functions still rank on top).

use biorank_eval::report::table;
use biorank_eval::{build_cases, Scenario};
use biorank_experiments::{default_world, DEFAULT_SEED, DEFAULT_TRIALS};
use biorank_rank::{Ranker, Ranking, ReducedMc};

fn main() {
    let world = default_world();
    let cases = build_cases(&world, Scenario::WellKnown).expect("integration succeeds");
    let abcc8 = &cases[0];
    assert_eq!(abcc8.protein, "ABCC8");
    let q = &abcc8.result.query;
    println!(
        "Query (EntrezProtein.name = \"ABCC8\", AmiGO): {} nodes, {} edges, {} answers",
        q.graph().node_count(),
        q.graph().edge_count(),
        q.answers().len()
    );
    let scores = ReducedMc::new(DEFAULT_TRIALS, DEFAULT_SEED)
        .score(q)
        .expect("reliability scores");
    let ranking = Ranking::rank(scores.answers(q));
    let rows: Vec<Vec<String>> = ranking
        .entries()
        .iter()
        .take(10)
        .map(|e| {
            let key = abcc8.result.answer_key(e.node).unwrap_or("?").to_string();
            let label = abcc8.result.label(e.node).to_string();
            vec![e.to_string(), label, key, format!("{:.4}", e.score)]
        })
        .collect();
    println!("{}", table(&["#", "Function", "GO term", "r score"], &rows));
}
