//! Fig. 1 + §4 "Efficiency (1)": the mediated query schema for
//! `(EntrezProtein.name = "ABCC8", AmiGO)` and the Theorem 3.2 verdicts:
//! the whole schema is **not** reducible (final `[n:m]` relation), while
//! every per-answer query **is** (the `[n:m]` becomes `[n:1]` from one
//! answer node's point of view).

use biorank_schema::{biorank_schema, check_query_reducible, check_reducible, Reducibility};

fn main() {
    let b = biorank_schema();
    println!("Fig. 1 mediated query schema (entity sets and relationships):");
    for (_, es) in b.schema.entity_sets() {
        println!(
            "  entity {:<14} source={:<14} ps={:.2}",
            es.name,
            es.source,
            es.ps.get()
        );
    }
    for (_, r) in b.schema.relationships() {
        let from = &b.schema.entity_set(r.from).name;
        let to = &b.schema.entity_set(r.to).name;
        println!(
            "  rel    {:<14} {:<14} → {:<14} {}  qs={:.2}",
            r.name,
            from,
            to,
            r.cardinality,
            r.qs.get()
        );
    }

    println!();
    match check_reducible(&b.schema, b.query, &b.hints) {
        Reducibility::Reducible { .. } => {
            println!("whole schema: REDUCIBLE (unexpected — paper says it is not)")
        }
        Reducibility::Unknown { residual_entities } => println!(
            "whole schema: NOT reducible (paper §4: \"the total graph is not \
             reducible due to the last [n:m] relation\"); residual: {residual_entities:?}"
        ),
    }
    match check_query_reducible(&b.schema, b.query, b.amigo, &b.hints) {
        Reducibility::Reducible { steps } => {
            println!(
                "per-answer queries: REDUCIBLE in {} derivation steps (paper: \
                 \"the individual queries, however, can be solved in a closed \
                 solution\")",
                steps.len()
            );
            for s in steps {
                println!("  {s:?}");
            }
        }
        Reducibility::Unknown { .. } => {
            println!("per-answer queries: NOT reducible (unexpected)")
        }
    }
}
