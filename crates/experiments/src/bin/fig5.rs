//! Fig. 5: average precision of the five ranking methods over the three
//! scenarios, plus the random-ordering baseline.
//!
//! Paper reference values (mean AP):
//!
//! | Scenario | Rel | Prop | Diff | InEdge | PathC | Random |
//! |---|---|---|---|---|---|---|
//! | 1 (well-known) | 0.84 | 0.85 | 0.73 | 0.85 | 0.87 | 0.42 |
//! | 2 (less-known) | 0.46 | 0.33 | 0.62 | 0.15 | 0.16 | 0.12 |
//! | 3 (hypothetical) | 0.68 | 0.62 | 0.48 | 0.50 | 0.50 | 0.29 |

use biorank_eval::{
    average_precision, evaluate, random_ap, random_baseline, report, stats, Scenario,
};
use biorank_experiments::{all_scenarios, default_world, figure_rankers};
use biorank_rank::{Ranker, Ranking};
use biorank_sources::GoTerm;

fn main() {
    let world = default_world();
    let (s1, s2, s3) = all_scenarios(&world);
    let rankers = figure_rankers();
    for (scenario, cases) in [
        (Scenario::WellKnown, &s1),
        (Scenario::LessKnown, &s2),
        (Scenario::Hypothetical, &s3),
    ] {
        let mut results = evaluate(&rankers, cases).expect("ranking succeeds");
        results.push(random_baseline(cases));
        let relevant: usize = cases.iter().map(|c| c.relevant_count()).sum();
        let title = format!(
            "{}: {} relevant functions, {} proteins",
            scenario.title(),
            relevant,
            cases.len()
        );
        println!("{}", report::ap_table(&title, &results));
    }

    // Scenario-2 variant: AP over the ranked list with the already
    // curated (iProClass) candidates removed — the normalization under
    // which the paper's Fig. 5b bar heights (Rel 0.46, Prop 0.33,
    // Diff 0.62) become reachable from its own Table 2 rank intervals.
    println!("Scenario 2 (well-known candidates excluded from the list):");
    let mut rows = Vec::new();
    for ranker in &rankers {
        let mut per_case = Vec::new();
        for case in &s2 {
            let q = &case.result.query;
            let gold = world.iproclass.functions(&case.protein);
            let scores = ranker.score(q).expect("ranking succeeds");
            let filtered: Vec<_> = q
                .answers()
                .iter()
                .copied()
                .filter(|&a| {
                    case.result
                        .answer_key(a)
                        .and_then(GoTerm::parse)
                        .map(|t| !gold.contains(&t))
                        .unwrap_or(true)
                })
                .map(|a| (a, scores.get(a)))
                .collect();
            let ranking = Ranking::rank(filtered);
            if let Some(ap) = average_precision(&ranking, |n| case.is_relevant(n)) {
                per_case.push(ap);
            }
        }
        rows.push(vec![
            ranker.name().to_string(),
            format!("{:.2}", stats::mean(&per_case)),
        ]);
    }
    let rand_mean = stats::mean(
        &s2.iter()
            .filter_map(|c| {
                let gold = world.iproclass.functions(&c.protein).len();
                random_ap(c.relevant_count(), c.answer_count() - gold)
            })
            .collect::<Vec<_>>(),
    );
    rows.push(vec!["Random".to_string(), format!("{rand_mean:.2}")]);
    println!("{}", report::table(&["Method", "Mean AP"], &rows));
}
