//! Fig. 7: speed of convergence of the Monte Carlo reliability
//! estimator. Mean and stdev of scenario-1 AP as a function of the
//! number of trials n ∈ {1, 3, 10, …, 10⁵}, over m repetitions, with the
//! closed-solution AP and the random baseline as reference lines.
//!
//! Paper finding: "already 1000 trials achieve high average accuracy",
//! consistent with the Theorem 3.1 bound (ε = 0.02, δ = 0.05 → ~10⁴).
//!
//! Usage: `fig7 [reps]` (default 20; the paper used m = 100).

use biorank_eval::report::table;
use biorank_eval::{build_cases, case_ap, random_baseline, stats, Scenario};
use biorank_experiments::{default_world, DEFAULT_SEED};
use biorank_rank::{bounds, ClosedReliability, ReducedMc};

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20);
    println!(
        "Theorem 3.1: n(ε=0.02, δ=0.05) = {} trials",
        bounds::trials_needed(0.02, 0.05).expect("valid parameters")
    );
    let world = default_world();
    let cases = build_cases(&world, Scenario::WellKnown).expect("integration succeeds");

    // Reference lines.
    let closed = ClosedReliability::default();
    let mut closed_aps = Vec::new();
    for case in &cases {
        if let Some(ap) = case_ap(&closed, case).expect("closed evaluation") {
            closed_aps.push(ap);
        }
    }
    let closed_mean = stats::mean(&closed_aps);
    let random_mean = random_baseline(&cases).summary.mean;

    let mut rows = Vec::new();
    for &trials in &[1u32, 3, 10, 30, 100, 300, 1_000, 3_000, 10_000, 100_000] {
        let mut means = Vec::with_capacity(reps);
        for rep in 0..reps {
            let ranker = ReducedMc::new(trials, DEFAULT_SEED + rep as u64);
            let mut aps = Vec::with_capacity(cases.len());
            for case in &cases {
                if let Some(ap) = case_ap(&ranker, case).expect("MC evaluation") {
                    aps.push(ap);
                }
            }
            means.push(stats::mean(&aps));
        }
        let s = stats::summarize(&means);
        rows.push(vec![
            trials.to_string(),
            format!("{:.3}", s.mean),
            format!("{:.3}", s.std_dev),
        ]);
    }
    println!("Scenario 1 AP vs number of Monte Carlo trials (m = {reps}):");
    println!("{}", table(&["Trials", "Mean AP", "Stdv"], &rows));
    println!("closed-solution reference: {closed_mean:.3}");
    println!("random-ordering reference: {random_mean:.3}");
}
