//! Fig. 6: multi-way sensitivity analysis. For each of the three
//! probabilistic ranking methods and each of the three scenarios, the
//! mean AP under log-odds Gaussian noise σ ∈ {0.5, 1, 2, 3} on *all*
//! node and edge probabilities, averaged over `m` repetitions, plus the
//! Random probability-assignment column.
//!
//! Paper finding: "the quality of ranking does not significantly
//! decrease before adding 3 standard deviations of noise."
//!
//! Usage: `fig6 [reps]` (default 20; the paper used m = 100).

use biorank_eval::report::table;
use biorank_eval::{evaluate, random_assignment_ap, sensitivity_ap, Scenario};
use biorank_experiments::{all_scenarios, default_world, DEFAULT_SEED, DEFAULT_TRIALS};
use biorank_rank::{Diffusion, Propagation, Ranker, ReducedMc};

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20);
    let sigmas = [0.5, 1.0, 2.0, 3.0];
    let world = default_world();
    let (s1, s2, s3) = all_scenarios(&world);
    let rankers: Vec<Box<dyn Ranker + Send + Sync>> = vec![
        Box::new(ReducedMc::new(DEFAULT_TRIALS, DEFAULT_SEED)),
        Box::new(Propagation::auto()),
        Box::new(Diffusion::auto()),
    ];
    let scenario_names = [
        Scenario::WellKnown,
        Scenario::LessKnown,
        Scenario::Hypothetical,
    ];

    for (scenario, cases) in scenario_names.iter().zip([&s1, &s2, &s3]) {
        let mut rows = Vec::new();
        for ranker in &rankers {
            let default_ap = evaluate(std::slice::from_ref(ranker), cases)
                .expect("default evaluation")[0]
                .summary
                .mean;
            let mut row = vec![ranker.name().to_string(), format!("{default_ap:.2}")];
            for (si, &sigma) in sigmas.iter().enumerate() {
                let s = sensitivity_ap(
                    ranker.as_ref(),
                    cases,
                    sigma,
                    reps,
                    DEFAULT_SEED + si as u64,
                )
                .expect("sensitivity run");
                row.push(format!("{:.2}", s.mean));
            }
            let rand = random_assignment_ap(ranker.as_ref(), cases, reps, DEFAULT_SEED + 99)
                .expect("random assignment run");
            row.push(format!("{:.2}", rand.mean));
            rows.push(row);
        }
        println!("{} (m = {reps} repetitions)", scenario.title());
        println!(
            "{}",
            table(
                &["Method", "Default", "σ=0.5", "σ=1", "σ=2", "σ=3", "Random"],
                &rows
            )
        );
    }
}
