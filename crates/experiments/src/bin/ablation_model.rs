//! Ablation of the generative evidence model: which mechanism drives
//! which figure shape?
//!
//! Each row disables one mechanism of the synthetic world and reruns
//! the Fig. 5 evaluation (reliability / propagation / InEdge means per
//! scenario). Measured effects (see EXPERIMENTS.md):
//!
//! * no path-count gap   → InEdge collapses in scenario 1 (0.90 → 0.42):
//!   redundancy counting IS the deterministic methods' signal;
//! * uniform strengths   → the probabilistic methods lose scenarios 2–3
//!   (S2 0.24 → 0.07, S3 0.65 → 0.41): per-path strength IS their
//!   signal — together these two rows are Fig. 9 in ablation form;
//! * no ontology links   → propagation becomes exactly reliability
//!   per answer (series-parallel graphs); small AP shifts only;
//! * no strong noise     → scenario-1 probabilistic AP nudges up
//!   (the weak-evidence-code tail, not strong noise, is the main
//!   residual limiter of reliability in scenario 1).
//!
//! Usage: `ablation_model [trials]` (default 2000).

use biorank_eval::{evaluate, Scenario};
use biorank_rank::{InEdge, Propagation, Ranker, ReducedMc};
use biorank_sources::{World, WorldParams};

fn scenario_means(world: &World, trials: u32) -> Vec<(f64, f64, f64)> {
    let rankers: Vec<Box<dyn Ranker + Send + Sync>> = vec![
        Box::new(ReducedMc::new(trials, 7)),
        Box::new(Propagation::auto()),
        Box::new(InEdge),
    ];
    Scenario::ALL
        .iter()
        .map(|&s| {
            let cases = biorank_eval::build_cases(world, s).expect("cases build");
            let r = evaluate(&rankers, &cases).expect("evaluation succeeds");
            (r[0].summary.mean, r[1].summary.mean, r[2].summary.mean)
        })
        .collect()
}

fn main() {
    let trials: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2000);

    let mut variants: Vec<(&str, WorldParams)> = Vec::new();
    variants.push(("default", WorldParams::default()));

    let mut p = WorldParams::default();
    p.evidence.strong_noise_fraction = 0.0;
    variants.push(("no strong noise", p));

    let mut p = WorldParams::default();
    p.evidence.isa_well_known = 0.0;
    p.evidence.isa_noise = 0.0;
    variants.push(("no ontology links", p));

    let mut p = WorldParams::default();
    p.evidence.noise.paths = p.evidence.well_known.paths;
    variants.push(("no path-count gap", p));

    let mut p = WorldParams::default();
    let mid = (0.4, 0.6);
    p.evidence.well_known.strength = mid;
    p.evidence.less_known.strength = mid;
    p.evidence.noise.strength = mid;
    p.evidence.strong_noise.strength = mid;
    p.evidence.hypo_true.strength = mid;
    p.evidence.hypo_noise.strength = mid;
    variants.push(("uniform strengths", p));

    println!(
        "{:<20} {:>23} {:>23} {:>23}",
        "Variant", "S1 Rel/Prop/InEdge", "S2 Rel/Prop/InEdge", "S3 Rel/Prop/InEdge"
    );
    for (name, params) in variants {
        let world = World::generate(params);
        let means = scenario_means(&world, trials);
        print!("{name:<20}");
        for (rel, prop, inedge) in means {
            print!("        {rel:.2}/{prop:.2}/{inedge:.2}");
        }
        println!();
    }
}
