//! §2 catalog artifacts: the 11-source table and the two
//! uncertainty-to-probability transformation tables (`pr` for EntrezGene
//! status codes and AmiGO evidence codes), plus reference points of the
//! e-value transform.

use biorank_eval::report::table;
use biorank_schema::{evalue_to_prob, source_catalog, EvidenceCode, StatusCode};

fn main() {
    println!("Source catalog (paper §2)");
    let rows: Vec<Vec<String>> = source_catalog()
        .iter()
        .map(|s| {
            vec![
                s.name.to_string(),
                s.entity_sets.to_string(),
                s.relationships.to_string(),
            ]
        })
        .collect();
    println!("{}", table(&["Source", "#E", "#R"], &rows));

    println!("EntrezGene StatusCode → pr");
    let rows: Vec<Vec<String>> = StatusCode::ALL
        .iter()
        .map(|c| vec![c.to_string(), format!("{:.1}", c.pr().get())])
        .collect();
    println!("{}", table(&["StatusCode", "pr"], &rows));

    println!("AmiGO EvidenceCode → pr");
    let rows: Vec<Vec<String>> = EvidenceCode::ALL
        .iter()
        .map(|c| vec![c.to_string(), format!("{:.1}", c.pr().get())])
        .collect();
    println!("{}", table(&["EvidenceCode", "pr"], &rows));

    println!("e-value → qr = −(1/300)·ln(e)");
    let rows: Vec<Vec<String>> = [1.0, 1e-10, 1e-30, 1e-65, 1e-100, 1e-130, 1e-300]
        .iter()
        .map(|&e| {
            vec![
                format!("{e:.0e}"),
                format!("{:.3}", evalue_to_prob(e).get()),
            ]
        })
        .collect();
    println!("{}", table(&["e-value", "qr"], &rows));
}
