//! Table 2: the ranks assigned to the 7 less-known functions of ABCC8,
//! CFTR and EYA1 by each of the five methods (tie intervals as `lo-hi`),
//! plus the Random column (the whole list is one tie: `1-n`).
//!
//! The paper's qualitative finding: the deterministic measures rank
//! these recently published functions no better than random (wide
//! intervals deep in the list), while the probabilistic methods pull
//! them up — diffusion most aggressively.

use biorank_eval::report::table;
use biorank_eval::{build_cases, Scenario};
use biorank_experiments::{default_world, figure_rankers, rank_intervals};
use biorank_sources::paper_data::TABLE2;

fn main() {
    let world = default_world();
    let cases = build_cases(&world, Scenario::LessKnown).expect("integration succeeds");
    let rankers = figure_rankers();

    let mut rows: Vec<Vec<String>> = Vec::new();
    for case in &cases {
        let keys: Vec<String> = TABLE2
            .iter()
            .filter(|r| r.protein == case.protein)
            .map(|r| biorank_sources::GoTerm(r.go).to_string())
            .collect();
        let key_refs: Vec<&str> = keys.iter().map(String::as_str).collect();
        let mut columns: Vec<Vec<String>> = Vec::new();
        let mut n = 0usize;
        for ranker in &rankers {
            let (intervals, total) = rank_intervals(ranker.as_ref(), case, &key_refs);
            columns.push(intervals);
            n = total;
        }
        for (i, key) in keys.iter().enumerate() {
            let meta = TABLE2
                .iter()
                .find(|r| {
                    r.protein == case.protein && biorank_sources::GoTerm(r.go).to_string() == *key
                })
                .expect("table2 row");
            let mut row = vec![
                case.protein.clone(),
                key.clone(),
                format!("{} ({})", meta.pubmed_id, meta.year),
            ];
            for col in &columns {
                row.push(col[i].clone());
            }
            row.push(format!("1-{n}"));
            rows.push(row);
        }
    }
    println!(
        "{}",
        table(
            &[
                "Protein",
                "Function",
                "PubMedID (year)",
                "Rel",
                "Prop",
                "Diff",
                "InEdge",
                "PathC",
                "Random"
            ],
            &rows
        )
    );
}
