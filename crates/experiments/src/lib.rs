//! # biorank-experiments
//!
//! One binary per table and figure of the BioRank paper. Each binary
//! prints a plain-text reproduction of its artifact; `EXPERIMENTS.md`
//! records the measured output next to the paper's numbers.
//!
//! | Binary | Artifact |
//! |---|---|
//! | `table_sources` | §2 source catalog + pr transformation tables |
//! | `fig1_schema` | Fig. 1 query schema + reducibility verdicts |
//! | `quick_table` | §2 example: top-ranked functions for ABCC8 |
//! | `fig23_reducibility` | Figs. 2–3: reducible vs irreducible shapes |
//! | `fig4_topologies` | Fig. 4: the 5 scores on two toy graphs |
//! | `table1` | Table 1: the 20 proteins and function counts |
//! | `fig5` | Fig. 5: AP of the 5 methods over 3 scenarios |
//! | `table2` | Table 2: scenario-2 per-function ranks |
//! | `table3` | Table 3: scenario-3 per-protein ranks |
//! | `fig6` | Fig. 6: sensitivity to log-odds noise |
//! | `fig7` | Fig. 7: Monte Carlo convergence |
//! | `fig8` | Fig. 8: timing of reliability strategies & methods |
//! | `ablation_model` | Evidence-model ablation (extension) |

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

use biorank_eval::{build_cases, Scenario, ScenarioCase};
use biorank_rank::Ranker;
use biorank_sources::{World, WorldParams};

/// Number of Monte Carlo trials used by the reliability ranker in the
/// figure experiments (the paper's "M1" configuration, matching the
/// Theorem 3.1 bound for ε = 0.02 at 95% confidence).
pub const DEFAULT_TRIALS: u32 = 10_000;

/// Shared deterministic seed for all experiment binaries.
pub const DEFAULT_SEED: u64 = 0xB10_C0DE;

/// Generates the default world used by every experiment.
pub fn default_world() -> World {
    World::generate(WorldParams::default())
}

/// Builds the cases of all three scenarios for a world.
pub fn all_scenarios(world: &World) -> (Vec<ScenarioCase>, Vec<ScenarioCase>, Vec<ScenarioCase>) {
    let s1 = build_cases(world, Scenario::WellKnown).expect("scenario 1 integrates");
    let s2 = build_cases(world, Scenario::LessKnown).expect("scenario 2 integrates");
    let s3 = build_cases(world, Scenario::Hypothetical).expect("scenario 3 integrates");
    (s1, s2, s3)
}

/// The paper's five rankers in figure order.
pub fn figure_rankers() -> Vec<Box<dyn Ranker + Send + Sync>> {
    biorank_rank::paper_rankers(DEFAULT_TRIALS, DEFAULT_SEED)
}

/// Rank intervals of specific GO terms for one case under one ranker —
/// the building block of Tables 2 and 3.
///
/// Returns, for each requested GO key, the `lo-hi` interval string (or
/// `"-"` when the term is not in the answer set), plus the answer-set
/// size (the upper bound of the Random column).
pub fn rank_intervals(
    ranker: &dyn Ranker,
    case: &ScenarioCase,
    go_keys: &[&str],
) -> (Vec<String>, usize) {
    let q = &case.result.query;
    let scores = ranker.score(q).expect("ranking succeeds");
    let ranking = biorank_rank::Ranking::rank(scores.answers(q));
    let intervals = go_keys
        .iter()
        .map(|key| {
            q.answers()
                .iter()
                .find(|&&a| case.result.answer_key(a) == Some(key))
                .and_then(|&a| ranking.rank_of(a))
                .map(|e| e.to_string())
                .unwrap_or_else(|| "-".to_string())
        })
        .collect();
    (intervals, q.answers().len())
}
