//! # BioRank
//!
//! A from-scratch Rust reproduction of **"Integrating and Ranking
//! Uncertain Scientific Data"** (Detwiler, Gatterbauer, Louie, Suciu,
//! Tarczy-Hornoch; ICDE 2009 / UW-CSE-08-06-03).
//!
//! BioRank is a mediator-based data-integration system that models the
//! uncertainty of scientific data probabilistically and ranks query
//! answers by combined evidence. This crate is the facade over the
//! workspace:
//!
//! * [`graph`] — probabilistic entity/query graphs, reductions, exact
//!   reliability ([`biorank_graph`]).
//! * [`schema`] — the mediated E/R schema, cardinality algebra, Theorem
//!   3.2 reducibility, uncertainty metrics ([`biorank_schema`]).
//! * [`sources`] — the synthetic biological source substrate
//!   ([`biorank_sources`]).
//! * [`mediator`] — exploratory-query execution ([`biorank_mediator`]).
//! * [`rank`] — the five ranking semantics ([`biorank_rank`]).
//! * [`eval`] — average precision, scenarios, sensitivity analysis
//!   ([`biorank_eval`]).
//! * [`service`] — the concurrent query service: cached integration,
//!   batched scoring, multi-world tenancy with an admin control
//!   plane, TCP line protocol ([`biorank_service`]).
//!
//! ## Quick start
//!
//! ```
//! use biorank::prelude::*;
//!
//! // Generate a deterministic world and integrate one protein's
//! // evidence across all sources.
//! let world = World::generate(WorldParams::default());
//! let mediator = Mediator::new(
//!     biorank_schema_with_ontology().schema,
//!     world.registry(),
//! );
//! let result = mediator
//!     .execute(&ExploratoryQuery::protein_functions("GALT"))
//!     .expect("GALT integrates");
//!
//! // Rank its candidate functions by possible-worlds reliability.
//! let scores = ReducedMc::new(1_000, 42)
//!     .score(&result.query)
//!     .expect("reliability estimation");
//! let ranking = Ranking::rank(scores.answers(&result.query));
//! assert_eq!(ranking.len(), 15); // Table 1: GALT → 15 functions
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub use biorank_eval as eval;
pub use biorank_graph as graph;
pub use biorank_mediator as mediator;
pub use biorank_rank as rank;
pub use biorank_schema as schema;
pub use biorank_service as service;
pub use biorank_sources as sources;

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use biorank_eval::{
        average_precision, build_cases, evaluate, random_ap, random_baseline, Scenario,
        ScenarioCase,
    };
    pub use biorank_graph::{EdgeId, NodeId, Prob, ProbGraph, QueryGraph};
    pub use biorank_mediator::{ExploratoryQuery, IntegrationResult, Mediator};
    pub use biorank_rank::{
        ClosedReliability, Diffusion, InEdge, NaiveMc, PathCount, Propagation, Ranker, Ranking,
        ReducedMc, Scores, TraversalMc,
    };
    pub use biorank_schema::{
        biorank_schema, biorank_schema_with_ontology, Cardinality, EvidenceCode, Schema, StatusCode,
    };
    pub use biorank_sources::{
        FunctionClass, GoTerm, Link, Record, Registry, Source, World, WorldParams,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let p = Prob::new(0.5).expect("valid probability");
        assert_eq!(p.or(p).get(), 0.75);
        assert!(random_ap(1, 2).is_some());
    }
}
