//! The `biorank` command-line tool.
//!
//! ```text
//! biorank proteins                      list queryable proteins
//! biorank query <PROTEIN> [options]     rank a protein's candidate functions
//! biorank explain <PROTEIN> <GO>       show the evidence paths behind one answer
//! biorank topk <PROTEIN> <K>           adaptive top-k with a confidence certificate
//! biorank scenarios                     the paper's Fig. 5 evaluation
//! biorank serve [options]               run the concurrent query service
//! biorank admin <CMD> [NAME] [options]  drive a running server's world registry
//!
//! query options:
//!   --method rel|mc|exact|prop|diff|inedge|pathc   ranking semantics (default rel)
//!   --top N                               rows to print (default 10)
//!   --extended                            use the full 11-source federation
//!   --seed S                              world seed (default paper seed)
//!   --trials N                            Monte Carlo trials (default 10000)
//!   --adaptive-eps E                      adaptive trials: stop as soon as the
//!                                         Theorem 3.1 bound certifies the
//!                                         ranking at separation E (rel and mc
//!                                         methods; default E 0.02 when any
//!                                         adaptive flag is given)
//!   --adaptive-delta D                    adaptive failure probability
//!                                         (default 0.05)
//!   --adaptive-max N                      adaptive trial ceiling
//!                                         (default --trials)
//!   --certify-top                         adaptive trials, certifying only the
//!                                         first --top answers and their
//!                                         boundary gap (implies the adaptive
//!                                         policy; rel and mc methods)
//!   --parallel                            intra-query parallel MC (mc method)
//!   --estimator traversal|word|auto       MC engine for the mc method:
//!                                         per-trial DFS traversal,
//!                                         64-trials-per-word bitmask batches
//!                                         (the fast path on DAG query graphs),
//!                                         or auto — the cost-based planner
//!                                         picks the cheapest strategy (exact /
//!                                         reduced / word / traversal) per query
//!   --explain                             print the planner's chosen strategy,
//!                                         predicted vs actual time, and the
//!                                         feature vector it scored (implies
//!                                         --estimator auto unless one was
//!                                         given explicitly)
//!   --addr HOST:PORT                      send the query to a running
//!                                         `biorank serve` instead of
//!                                         executing locally
//!   --world NAME                          resident world to query (remote only)
//!   --trace                               print the per-stage span breakdown
//!                                         (remote: echoed by the server;
//!                                         local: measured in-process)
//!   --deadline-ms N                       total execution budget (remote only):
//!                                         a query still running when it
//!                                         expires aborts between Monte Carlo
//!                                         batches with deadline_exceeded
//!   --timeout-ms N                        client-side connect + socket i/o
//!                                         timeout (remote only)
//!   --retries N                           retry overload sheds up to N times
//!                                         with the server's retry_after_ms
//!                                         hint and jittered exponential
//!                                         backoff (remote only; default 0)
//!
//! serve options:
//!   --addr HOST:PORT                      bind address (default 127.0.0.1:7878)
//!   --workers N                           query worker threads (default 4)
//!   --cache N                             per-layer LRU capacity (default 512)
//!   --worlds N                            resident-world budget (default 4)
//!   --extended / --seed S                 default-world selection, as above
//!   --estimator traversal|word|auto       default MC engine for mc requests
//!                                         that don't pick one themselves
//!                                         (default auto — the cost-based
//!                                         planner; pass word or traversal to
//!                                         pin one engine server-wide)
//!   --adaptive-eps/--adaptive-delta/--adaptive-max
//!                                         tune the adaptive house policy for
//!                                         requests that omit the trials field
//!                                         (adaptive is the default; an
//!                                         explicit --trials N opts the server
//!                                         back into fixed N)
//!   --slow-query-micros N                 log queries at least this slow to
//!                                         the in-memory slow-query ring
//!                                         (default 10000)
//!   --data-dir PATH                       durable world persistence: replay
//!                                         the directory's manifest + admin
//!                                         WAL on boot (warm restart from
//!                                         snapshots), and WAL-log every
//!                                         world.load/swap/evict before
//!                                         acknowledging it
//!   --max-connections N                   concurrent-connection budget
//!                                         (default 256); past it the accept
//!                                         loop sheds with an id-less
//!                                         {"error":"overloaded",
//!                                         "retry_after_ms":N} line
//!   --queue-depth N                       bound on admitted-but-unanswered
//!                                         queries (default 1024); at the
//!                                         bound requests are refused with an
//!                                         overloaded error response
//!   --rate-limit N                        per-connection token-bucket limit,
//!                                         requests/second (default off)
//!   --default-deadline-ms N               deadline for query lines that omit
//!                                         deadline_ms (default: none)
//!   --drain-deadline-ms N                 how long a drain waits for
//!                                         in-flight queries (default 30000)
//!   --fault-plan SPEC                     fault injection for overload
//!                                         testing: comma-separated
//!                                         key=value among accept_delay_ms,
//!                                         response_delay_ms, blackhole,
//!                                         short_write, close_after,
//!                                         stall_batch_ms
//!
//! `biorank serve` drains gracefully on SIGTERM: the listener stops,
//! in-flight queries finish under --drain-deadline-ms, durable worlds
//! checkpoint, and the process exits 0.
//!
//! admin commands (all need --addr, default 127.0.0.1:7878):
//!   world.load NAME [--seed S] [--extended] [--cache N] [--background]
//!                                         make a world resident; with
//!                                         --background, return immediately
//!                                         and build on a worker thread
//!   world.swap NAME [--seed S] [--extended] [--cache N] [--warm K]
//!                                         replace + invalidate caches,
//!                                         replaying the K hottest cached
//!                                         queries into the fresh engine
//!                                         (default 8; 0 installs cold)
//!   world.evict NAME                                      drop a resident world
//!   world.save NAME                       write NAME's snapshot (spec + both
//!                                         cache layers) to the server's data
//!                                         directory (serve --data-dir)
//!   checkpoint                            snapshot every resident world,
//!                                         rewrite the manifest, truncate the
//!                                         WAL (log compaction)
//!   world.list                            show the registry, including each
//!                                         world's planner strategy mix
//!                                         (exact/reduced/word/traversal picks)
//!   stats                                                 per-world cache counters
//!   metrics [--reset]                     full telemetry snapshot: service and
//!                                         per-world counters/histograms plus
//!                                         the slow-query log; --reset zeroes
//!                                         everything after reading
//!   server.drain                          graceful shutdown: stop accepting,
//!                                         finish in-flight queries under the
//!                                         drain deadline, checkpoint durable
//!                                         worlds, then exit 0
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use biorank::prelude::*;
use biorank::rank::{
    explain::explain, plan, Certificate, CertificateMode, ClosedReliability, CostModel,
    GraphFeatures, Plan, PlanFeatures, Strategy, TopK, TrialsPolicy,
};
use biorank::schema::{biorank_schema_full, ComposeHints};
use biorank::service::{
    query_schema_reducible, AdaptiveConfig, Client, ClientOptions, Estimator, FaultPlan, Method,
    MetricsSnapshot, QueryRequest, RankerSpec, ServeOptions, Server, TenancyError, Trials,
    WorldManager, WorldSpec, WorldStore, DEFAULT_SLOW_QUERY_MICROS, DEFAULT_SWAP_WARM,
    DEFAULT_WORLD, DEFAULT_WORLD_BUDGET,
};

struct Options {
    method: String,
    top: usize,
    extended: bool,
    seed: u64,
    trials: u32,
    /// `true` when `--trials` was given explicitly (the serve default
    /// flips to adaptive only when it was not).
    trials_explicit: bool,
    adaptive_eps: Option<f64>,
    adaptive_delta: Option<f64>,
    adaptive_max: Option<u32>,
    certify_top: bool,
    parallel: bool,
    estimator: Option<Estimator>,
    /// `query --explain`: print the planner's chosen strategy,
    /// predicted vs actual time, and the scored feature vector.
    explain: bool,
    addr: Option<String>,
    workers: usize,
    cache: usize,
    worlds: usize,
    world: Option<String>,
    background: bool,
    warm: usize,
    trace: bool,
    reset: bool,
    slow_query_micros: u64,
    data_dir: Option<String>,
    /// `query --deadline-ms`: the request's total execution budget.
    deadline_ms: Option<u64>,
    /// `query --timeout-ms`: client connect + socket i/o timeout.
    timeout_ms: Option<u64>,
    /// `query --retries`: bounded retry on overload sheds.
    retries: u32,
    max_connections: usize,
    queue_depth: usize,
    rate_limit: Option<u32>,
    default_deadline_ms: Option<u64>,
    drain_deadline_ms: u64,
    fault_plan: Option<FaultPlan>,
    positional: Vec<String>,
}

impl Options {
    /// `true` when any flag asking for adaptive trials appeared
    /// (`--certify-top` implies the adaptive policy — there is nothing
    /// to stop early in a fixed run).
    fn wants_adaptive(&self) -> bool {
        self.adaptive_eps.is_some()
            || self.adaptive_delta.is_some()
            || self.adaptive_max.is_some()
            || self.certify_top
    }

    /// The adaptive policy the flags configure: unset parameters
    /// default to the paper's ε = 0.02, δ = 0.05 and a `--trials`
    /// ceiling.
    fn adaptive_config(&self) -> AdaptiveConfig {
        let defaults = AdaptiveConfig::default();
        AdaptiveConfig {
            epsilon: self.adaptive_eps.unwrap_or(defaults.epsilon),
            delta: self.adaptive_delta.unwrap_or(defaults.delta),
            max_trials: self.adaptive_max.unwrap_or(self.trials),
        }
    }

    /// The trial policy a `query` asks for: adaptive as soon as any
    /// adaptive flag appears, otherwise fixed `--trials`.
    fn trials_policy(&self) -> Trials {
        if self.wants_adaptive() {
            Trials::Adaptive(self.adaptive_config())
        } else {
            Trials::Fixed(self.trials)
        }
    }

    /// The estimator a `query` asks for: `--explain` wants a plan to
    /// print, so it implies the planner unless an engine was pinned
    /// explicitly.
    fn effective_estimator(&self) -> Option<Estimator> {
        if self.explain && self.estimator.is_none() {
            Some(Estimator::Auto)
        } else {
            self.estimator
        }
    }

    /// The house trial policy a `serve` installs for requests that
    /// omit `trials`: adaptive by default, fixed only when the
    /// operator pinned an explicit `--trials N` (without any adaptive
    /// flag overruling it).
    fn serve_trials_policy(&self) -> Trials {
        if self.wants_adaptive() || !self.trials_explicit {
            Trials::Adaptive(self.adaptive_config())
        } else {
            Trials::Fixed(self.trials)
        }
    }
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        method: "rel".to_string(),
        top: 10,
        extended: false,
        seed: 0xB10_C0DE,
        trials: 10_000,
        trials_explicit: false,
        certify_top: false,
        adaptive_eps: None,
        adaptive_delta: None,
        adaptive_max: None,
        parallel: false,
        estimator: None,
        explain: false,
        addr: None,
        workers: 4,
        cache: biorank::service::DEFAULT_CACHE_CAPACITY,
        worlds: DEFAULT_WORLD_BUDGET,
        world: None,
        background: false,
        warm: DEFAULT_SWAP_WARM,
        trace: false,
        reset: false,
        slow_query_micros: DEFAULT_SLOW_QUERY_MICROS,
        data_dir: None,
        deadline_ms: None,
        timeout_ms: None,
        retries: 0,
        max_connections: biorank::service::DEFAULT_MAX_CONNECTIONS,
        queue_depth: biorank::service::DEFAULT_QUEUE_DEPTH,
        rate_limit: None,
        default_deadline_ms: None,
        drain_deadline_ms: biorank::service::DEFAULT_DRAIN_DEADLINE_MS,
        fault_plan: None,
        positional: Vec::new(),
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--method" => {
                i += 1;
                opts.method = args.get(i).ok_or("--method needs a value")?.to_lowercase();
            }
            "--top" => {
                i += 1;
                opts.top = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--top needs a number")?;
            }
            "--seed" => {
                i += 1;
                opts.seed = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs a number")?;
            }
            "--trials" => {
                i += 1;
                opts.trials = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--trials needs a number")?;
                opts.trials_explicit = true;
            }
            "--adaptive-eps" => {
                i += 1;
                opts.adaptive_eps = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .ok_or("--adaptive-eps needs a number in (0, 1)")?,
                );
            }
            "--adaptive-delta" => {
                i += 1;
                opts.adaptive_delta = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .ok_or("--adaptive-delta needs a number in (0, 1)")?,
                );
            }
            "--adaptive-max" => {
                i += 1;
                opts.adaptive_max = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .ok_or("--adaptive-max needs a number")?,
                );
            }
            "--warm" => {
                i += 1;
                opts.warm = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--warm needs a number")?;
            }
            "--addr" => {
                i += 1;
                opts.addr = Some(
                    args.get(i)
                        .ok_or("--addr needs a HOST:PORT value")?
                        .to_string(),
                );
            }
            "--workers" => {
                i += 1;
                opts.workers = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--workers needs a number")?;
            }
            "--cache" => {
                i += 1;
                opts.cache = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--cache needs a number")?;
            }
            "--worlds" => {
                i += 1;
                opts.worlds = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--worlds needs a number")?;
            }
            "--world" => {
                i += 1;
                opts.world = Some(args.get(i).ok_or("--world needs a name")?.to_string());
            }
            "--estimator" => {
                i += 1;
                let name = args.get(i).ok_or("--estimator needs a value")?;
                opts.estimator =
                    Some(Estimator::parse(name).ok_or_else(|| {
                        format!("unknown estimator {name:?} (traversal|word|auto)")
                    })?);
            }
            "--data-dir" => {
                i += 1;
                opts.data_dir = Some(args.get(i).ok_or("--data-dir needs a path")?.to_string());
            }
            "--slow-query-micros" => {
                i += 1;
                opts.slow_query_micros = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--slow-query-micros needs a number")?;
            }
            "--deadline-ms" => {
                i += 1;
                opts.deadline_ms = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .filter(|&ms: &u64| ms > 0)
                        .ok_or("--deadline-ms needs a positive number")?,
                );
            }
            "--timeout-ms" => {
                i += 1;
                opts.timeout_ms = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .ok_or("--timeout-ms needs a number")?,
                );
            }
            "--retries" => {
                i += 1;
                opts.retries = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--retries needs a number")?;
            }
            "--max-connections" => {
                i += 1;
                opts.max_connections = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--max-connections needs a number")?;
            }
            "--queue-depth" => {
                i += 1;
                opts.queue_depth = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--queue-depth needs a number")?;
            }
            "--rate-limit" => {
                i += 1;
                opts.rate_limit = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .ok_or("--rate-limit needs a number")?,
                );
            }
            "--default-deadline-ms" => {
                i += 1;
                opts.default_deadline_ms = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .filter(|&ms: &u64| ms > 0)
                        .ok_or("--default-deadline-ms needs a positive number")?,
                );
            }
            "--drain-deadline-ms" => {
                i += 1;
                opts.drain_deadline_ms = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--drain-deadline-ms needs a number")?;
            }
            "--fault-plan" => {
                i += 1;
                let spec = args.get(i).ok_or("--fault-plan needs a spec")?;
                opts.fault_plan = Some(FaultPlan::parse(spec)?);
            }
            "--certify-top" => opts.certify_top = true,
            "--explain" => opts.explain = true,
            "--parallel" => opts.parallel = true,
            "--extended" => opts.extended = true,
            "--background" => opts.background = true,
            "--trace" => opts.trace = true,
            "--reset" => opts.reset = true,
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag {flag}"));
            }
            other => opts.positional.push(other.to_string()),
        }
        i += 1;
    }
    Ok(opts)
}

fn build(opts: &Options) -> (World, Mediator, ComposeHints) {
    let world = World::generate(WorldParams {
        seed: opts.seed,
        extended: opts.extended,
        ..WorldParams::default()
    });
    let bundle = if opts.extended {
        biorank_schema_full()
    } else {
        biorank_schema_with_ontology()
    };
    let hints = bundle.hints.clone();
    let mediator = Mediator::new(bundle.schema, world.registry());
    (world, mediator, hints)
}

fn ranker_for(
    method: &str,
    trials: u32,
    estimator: Option<Estimator>,
) -> Result<Box<dyn Ranker + Send + Sync>, String> {
    Ok(match method {
        "rel" | "reliability" => Box::new(ReducedMc::new(trials, 42)),
        "mc" | "relmc" if estimator == Some(Estimator::Word) => {
            Box::new(biorank::rank::WordMc::new(trials, 42))
        }
        "mc" | "relmc" => Box::new(TraversalMc::new(trials, 42)),
        // The planner's exact strategy (trials/seed do not apply).
        "exact" | "closed" => Box::new(ClosedReliability::default()),
        "prop" | "propagation" => Box::new(Propagation::auto()),
        "diff" | "diffusion" => Box::new(Diffusion::auto()),
        "inedge" => Box::new(InEdge),
        "pathc" | "pathcount" => Box::new(PathCount),
        other => return Err(format!("unknown method {other:?}")),
    })
}

fn cmd_proteins(opts: &Options) -> Result<(), String> {
    let (world, _, _) = build(opts);
    println!("{:<10} {:<14} {:>10}", "Protein", "Kind", "Candidates");
    for p in &world.profiles {
        let kind = match p.kind {
            biorank::sources::ProteinKind::WellStudied => "well-studied",
            biorank::sources::ProteinKind::Hypothetical => "hypothetical",
        };
        println!("{:<10} {:<14} {:>10}", p.name, kind, p.functions.len());
    }
    Ok(())
}

fn remote_spec(opts: &Options) -> Result<RankerSpec, String> {
    let method = Method::parse(&opts.method).ok_or_else(|| {
        format!(
            "unknown method {:?} (expected rel|mc|prop|diff|inedge|pathc)",
            opts.method
        )
    })?;
    Ok(RankerSpec {
        method,
        trials: opts.trials_policy(),
        seed: RankerSpec::DEFAULT_SEED,
        parallel: opts.parallel,
        estimator: opts.effective_estimator(),
    })
}

/// The human-readable `--explain` rendering of one plan echo, shared
/// by the local and remote query paths.
fn print_plan(plan: &Plan, actual_ns: u64) {
    println!(
        "  plan: {}{} (predicted {} ns, actual {} ns)",
        plan.strategy.wire_name(),
        if plan.fallback {
            " [fallback: a cheaper strategy was ineligible]"
        } else {
            ""
        },
        plan.predicted_ns,
        actual_ns
    );
    let f = &plan.features;
    let trials = match f.trials {
        TrialsPolicy::Fixed(n) => format!("{n} fixed trials"),
        TrialsPolicy::Adaptive { max_trials } => format!("adaptive trials ≤ {max_trials}"),
    };
    println!(
        "    features: {} nodes, {} edges, {} answers, {}, reduced {}/{}, schema {}, {}{}",
        f.graph.nodes,
        f.graph.edges,
        f.graph.answers,
        if f.graph.acyclic { "acyclic" } else { "cyclic" },
        f.graph.reduced_nodes,
        f.graph.reduced_edges,
        if f.graph.schema_reducible {
            "reducible"
        } else {
            "irreducible"
        },
        trials,
        f.top_k
            .map(|k| format!(", top-{k} certified"))
            .unwrap_or_default()
    );
}

/// One human-readable line for an adaptive run's stop certificate.
fn certificate_line(cert: &Certificate) -> String {
    let scope = match cert.mode {
        CertificateMode::Full => "full ranking".to_string(),
        CertificateMode::TopK(k) => format!("top-{k} + boundary"),
    };
    if cert.certified {
        format!(
            "  {scope} certified after {} trials (resolves separations ≥ {:.4} at the requested confidence)",
            cert.trials_used, cert.epsilon
        )
    } else {
        format!(
            "  {scope} NOT certified: trial ceiling {} hit (resolves ≥ {:.4}); some gap is still ambiguous",
            cert.trials_used, cert.epsilon
        )
    }
}

/// `biorank query <PROTEIN> --addr HOST:PORT`: execute against a
/// running `biorank serve` over the line protocol.
fn cmd_query_remote(opts: &Options, addr: &str) -> Result<(), String> {
    let protein = opts
        .positional
        .first()
        .ok_or("usage: biorank query <PROTEIN> --addr HOST:PORT")?;
    let request = QueryRequest {
        query: ExploratoryQuery::protein_functions(protein),
        spec: remote_spec(opts)?,
        top: Some(opts.top),
        certify_top: opts.certify_top,
        world: opts.world.clone(),
        trace: opts.trace,
        deadline_ms: opts.deadline_ms,
    };
    let copts = client_options(opts);
    let response = if opts.retries > 0 {
        // Retrying reconnects per attempt (an overload shed closes
        // the connection), honoring the server's retry_after_ms hint.
        Client::query_with_retry(addr, copts, &request, opts.retries).map_err(|e| e.to_string())?
    } else {
        let mut client =
            Client::connect_with(addr, copts).map_err(|e| format!("connect {addr}: {e}"))?;
        client.query(&request).map_err(|e| e.to_string())?
    };
    println!(
        "{protein}: {} candidate functions via {addr}{}, method {} ({}, {} µs)",
        response.total_answers,
        opts.world
            .as_deref()
            .map(|w| format!(" world {w:?}"))
            .unwrap_or_default(),
        opts.method,
        match (response.cached_graph, response.cached_scores) {
            (_, true) => "result cache hit",
            (true, false) => "graph cache hit",
            (false, false) => "cold",
        },
        response.micros
    );
    if let Some(cert) = &response.certificate {
        println!("{}", certificate_line(cert));
    }
    if opts.explain {
        match &response.plan {
            Some(plan) => print_plan(plan, response.micros.saturating_mul(1_000)),
            None => println!(
                "  plan: none (an explicit estimator or non-MC method routes around the planner)"
            ),
        }
    }
    if !response.trace.is_empty() {
        let total: u64 = response.trace.iter().map(|s| s.nanos).sum();
        println!(
            "  trace ({} stages, {} µs accounted):",
            response.trace.len(),
            total / 1_000
        );
        for s in &response.trace {
            println!("    {:<10} {:>12} ns", s.stage, s.nanos);
        }
    }
    for a in &response.answers {
        let rank = if a.rank_lo == a.rank_hi {
            a.rank_lo.to_string()
        } else {
            format!("{}-{}", a.rank_lo, a.rank_hi)
        };
        println!(
            "{rank:>6}  {:<12} {:<42} {:>8.4}",
            a.key,
            truncate(&a.label, 42),
            a.score
        );
    }
    Ok(())
}

/// The client-side timeouts `--timeout-ms` configures.
fn client_options(opts: &Options) -> ClientOptions {
    let timeout = opts.timeout_ms.map(std::time::Duration::from_millis);
    ClientOptions {
        connect_timeout: timeout,
        io_timeout: timeout,
    }
}

/// `biorank serve`: bind the concurrent query service and run until
/// killed (or drained — `admin server.drain` / SIGTERM both stop the
/// listener, finish in-flight queries, checkpoint durable worlds,
/// and exit 0). The world built from `--seed`/`--extended` becomes
/// the pinned default of a registry holding up to `--worlds` worlds;
/// `biorank admin` loads and swaps the rest at runtime.
fn cmd_serve(opts: &Options) -> Result<(), String> {
    let spec = WorldSpec {
        seed: opts.seed,
        extended: opts.extended,
        cache_capacity: opts.cache,
    };
    let manager = match opts.data_dir.as_deref() {
        Some(dir) => durable_manager(dir, spec, opts.worlds)?,
        // Built via the same WorldSpec::build an admin world.load
        // would use, so "equal spec" always means "equal engine".
        None => Arc::new(WorldManager::with_default(
            Arc::new(spec.build()),
            spec,
            opts.worlds,
        )),
    };
    let addr = opts.addr.as_deref().unwrap_or("127.0.0.1:7878");
    let server = Server::bind_manager(
        addr,
        Arc::clone(&manager),
        ServeOptions {
            workers: opts.workers,
            // Cost-based planning + adaptive trials are the serving
            // defaults; `--estimator word|traversal` / an explicit
            // `--trials N` opt the house policy back out.
            default_estimator: opts.estimator.unwrap_or(Estimator::Auto),
            default_trials: opts.serve_trials_policy(),
            slow_query_micros: opts.slow_query_micros,
            max_connections: opts.max_connections,
            queue_depth: opts.queue_depth,
            rate_limit_per_sec: opts.rate_limit,
            default_deadline_ms: opts.default_deadline_ms,
            drain_deadline_ms: opts.drain_deadline_ms,
            fault_plan: opts.fault_plan,
            ..ServeOptions::default()
        },
    )
    .map_err(|e| format!("bind {addr}: {e}"))?;
    // A durable boot restores recovered worlds on background threads;
    // hold the listening line — the readiness signal operators (and
    // ci.sh) key on — until the default world resolves.
    if opts.data_dir.is_some() {
        wait_for_default(&manager)?;
    }
    println!(
        "biorank-serve listening on {} ({} workers, cache capacity {}, world budget {}, \
         default seed {:#x}{})",
        server.local_addr().map_err(|e| e.to_string())?,
        opts.workers.max(1),
        opts.cache,
        opts.worlds.max(1),
        opts.seed,
        if opts.extended {
            ", extended federation"
        } else {
            ""
        }
    );
    // Graceful drain on SIGTERM: the handler itself only flips a
    // flag (async-signal-safe); a monitor thread runs the actual
    // drain, which makes run() return and the process exit 0.
    #[cfg(unix)]
    install_sigterm_drain(server.handle().map_err(|e| e.to_string())?);
    server.run().map_err(|e| e.to_string())
}

/// Set by the raw SIGTERM handler; polled by the drain monitor.
#[cfg(unix)]
static SIGTERM_RECEIVED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Installs the SIGTERM → graceful-drain path without a libc crate:
/// a raw `signal(2)` registration whose handler does one atomic
/// store, plus a monitor thread that performs the drain outside
/// signal context.
#[cfg(unix)]
fn install_sigterm_drain(handle: biorank::service::ServerHandle) {
    use std::sync::atomic::Ordering;
    extern "C" fn on_sigterm(_signum: i32) {
        SIGTERM_RECEIVED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_sigterm as *const () as usize);
    }
    std::thread::spawn(move || loop {
        if SIGTERM_RECEIVED.load(Ordering::SeqCst) {
            eprintln!("SIGTERM: draining (in-flight queries finish, durable worlds checkpoint)");
            match handle.drain() {
                Ok(worlds) => eprintln!("drained: {worlds} world(s) checkpointed"),
                Err(e) => eprintln!("drain error: {e}"),
            }
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    });
}

/// Opens (or creates) `--data-dir`, replays its manifest + admin WAL,
/// and returns a manager with every recovered world restoring on a
/// background thread from its snapshot (warm caches). The CLI's own
/// `--seed`/`--extended`/`--cache` flags define the default world: a
/// recovered default with the same spec restores warm; a mismatch is
/// rebuilt from the flags (the operator's flags win).
fn durable_manager(dir: &str, spec: WorldSpec, budget: usize) -> Result<Arc<WorldManager>, String> {
    let manager = WorldManager::new(budget);
    let store = Arc::new(
        WorldStore::open(dir, manager.metrics())
            .map_err(|e| format!("open data dir {dir}: {e}"))?,
    );
    let recovery = store
        .recover()
        .map_err(|e| format!("recover data dir {dir}: {e}"))?;
    let manager = Arc::new(
        manager
            .with_store(Arc::clone(&store))
            .map_err(|e| e.to_string())?,
    );
    manager.set_generation_floor(recovery.next_generation);
    let mut restored = 0usize;
    let mut default_recovered = false;
    for (name, world) in &recovery.worlds {
        let wspec = match biorank::service::persist::world_spec(world.spec) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("skipping recovered world {name:?}: {e}");
                continue;
            }
        };
        if name == DEFAULT_WORLD && wspec != spec {
            continue; // the flags changed; rebuild the default below
        }
        let snapshot = world.snapshot.as_deref().and_then(|f| {
            // A missing or corrupt snapshot downgrades to a cold
            // rebuild of the recorded spec, never a boot failure.
            store.load_snapshot(f).ok()
        });
        manager
            .restore_background(name, wspec, world.generation, snapshot)
            .map_err(|e| format!("restore world {name:?}: {e}"))?;
        restored += 1;
        if name == DEFAULT_WORLD {
            default_recovered = true;
        }
    }
    if !default_recovered {
        manager
            .load(DEFAULT_WORLD, spec)
            .map_err(|e| e.to_string())?;
    }
    println!(
        "data dir {dir}: {restored} world(s) recovered, {} WAL record(s) replayed",
        recovery.wal_ops_replayed
    );
    Ok(manager)
}

/// Blocks until the default world is resident (restores run on
/// background threads), so the listening line is a real ready signal.
fn wait_for_default(manager: &WorldManager) -> Result<(), String> {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(300);
    loop {
        match manager.resolve(None) {
            Ok(_) => return Ok(()),
            Err(TenancyError::WorldLoading(_)) if std::time::Instant::now() < deadline => {
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
            Err(e) => return Err(format!("default world never became ready: {e}")),
        }
    }
}

/// `biorank admin`: drive a running server's world registry.
fn cmd_admin(opts: &Options) -> Result<(), String> {
    let cmd = opts.positional.first().ok_or(
        "usage: biorank admin <world.load|world.swap|world.evict|world.save|checkpoint\
         |server.drain|world.list|stats|metrics>",
    )?;
    let addr = opts.addr.as_deref().unwrap_or("127.0.0.1:7878");
    let mut client = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let name = || -> Result<&str, String> {
        opts.positional
            .get(1)
            .map(String::as_str)
            .ok_or(format!("usage: biorank admin {cmd} <NAME>"))
    };
    let spec = WorldSpec {
        seed: opts.seed,
        extended: opts.extended,
        cache_capacity: opts.cache,
    };
    match cmd.as_str() {
        "world.load" if opts.background => {
            let world = name()?;
            match client
                .world_load_background(world, spec)
                .map_err(|e| e.to_string())?
            {
                None => println!(
                    "world {world:?} loading in background (poll `biorank admin world.list`)"
                ),
                Some(generation) => {
                    println!("world {world:?} already resident (generation {generation})");
                }
            }
        }
        "world.load" => {
            let world = name()?;
            let generation = client.world_load(world, spec).map_err(|e| e.to_string())?;
            println!("world {world:?} resident (generation {generation})");
        }
        "world.swap" => {
            let world = name()?;
            let generation = client
                .world_swap_warm(world, spec, opts.warm)
                .map_err(|e| e.to_string())?;
            println!(
                "world {world:?} swapped (generation {generation}, caches invalidated{})",
                if opts.warm > 0 {
                    format!(", warm-up budget {}", opts.warm)
                } else {
                    String::new()
                }
            );
        }
        "world.evict" => {
            let world = name()?;
            client.world_evict(world).map_err(|e| e.to_string())?;
            println!("world {world:?} evicted");
        }
        "world.save" => {
            let world = name()?;
            let (generation, bytes) = client.world_save(world).map_err(|e| e.to_string())?;
            println!("world {world:?} snapshot saved (generation {generation}, {bytes} bytes)");
        }
        "checkpoint" => {
            let (worlds, bytes) = client.checkpoint().map_err(|e| e.to_string())?;
            println!("checkpoint: {worlds} world(s) snapshotted ({bytes} bytes), WAL compacted");
        }
        "server.drain" => {
            let worlds = client.drain().map_err(|e| e.to_string())?;
            println!(
                "server drained: in-flight queries finished, {worlds} world(s) checkpointed, \
                 listener closed"
            );
        }
        "world.list" => {
            let worlds = client.world_list().map_err(|e| e.to_string())?;
            println!(
                "{:<12} {:<8} {:>4} {:>18} {:>9} {:>7} {:>16} {:>18}",
                "World",
                "State",
                "Gen",
                "Seed",
                "Federation",
                "Cache",
                "SpecHash",
                "Planned(e/r/w/t)"
            );
            for w in worlds {
                // The per-world planner strategy mix, in
                // exact/reduced/word/traversal order.
                let planned = w
                    .planner_chosen
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join("/");
                println!(
                    "{:<12} {:<8} {:>4} {:>#18x} {:>9} {:>7} {:>16} {:>18}",
                    w.name,
                    w.state.wire_name(),
                    w.generation,
                    w.spec.seed,
                    if w.spec.extended { "extended" } else { "fig1" },
                    w.spec.cache_capacity,
                    format!("{:016x}", w.spec.spec_hash()),
                    planned
                );
            }
        }
        "stats" => {
            let stats = client.stats().map_err(|e| e.to_string())?;
            println!(
                "{} resident world(s), budget {}",
                stats.resident, stats.budget
            );
            for w in stats.worlds {
                println!(
                    "  {:<12} gen {:<3} graphs {:>6}h/{:<6}m ({:>5.1}%)  \
                     results {:>6}h/{:<6}m ({:>5.1}%)  \
                     inserts {}+{} rejected {}",
                    w.name,
                    w.generation,
                    w.engine.graphs.hits,
                    w.engine.graphs.misses,
                    100.0 * w.engine.graphs.hit_rate(),
                    w.engine.results.hits,
                    w.engine.results.misses,
                    100.0 * w.engine.results.hit_rate(),
                    w.engine.graphs.inserts,
                    w.engine.results.inserts,
                    w.engine.results.rejected,
                );
            }
        }
        "metrics" => {
            let report = client.metrics(opts.reset).map_err(|e| e.to_string())?;
            println!("service:");
            print_metrics_snapshot("  ", &report.service);
            for w in &report.worlds {
                println!("world {:?}:", w.name);
                print_metrics_snapshot("  ", &w.metrics);
            }
            if report.slow_queries.is_empty() {
                println!("slow queries: none");
            } else {
                println!("slow queries ({}):", report.slow_queries.len());
                for s in &report.slow_queries {
                    println!(
                        "  {:<12} {:<14} {:<6} {:>8} µs{}",
                        s.world,
                        s.value,
                        s.method,
                        s.micros,
                        if s.cached { "  [cached]" } else { "" }
                    );
                }
            }
            if opts.reset {
                println!("(all counters, histograms, and the slow-query log were reset)");
            }
        }
        other => return Err(format!("unknown admin command {other:?}")),
    }
    Ok(())
}

/// Renders one registry snapshot: counters and gauges as plain totals,
/// histograms as count/mean/max-bucket summaries.
fn print_metrics_snapshot(indent: &str, snap: &MetricsSnapshot) {
    for (name, value) in &snap.counters {
        println!("{indent}{name:<28} {value}");
    }
    for (name, value) in &snap.gauges {
        println!("{indent}{name:<28} {value} (gauge)");
    }
    for (name, h) in &snap.histograms {
        let top = h.buckets.last().map(|b| b.hi).unwrap_or(0);
        println!(
            "{indent}{name:<28} n={} mean={:.0} max<{}",
            h.count,
            h.mean(),
            top
        );
    }
}

fn cmd_query(opts: &Options) -> Result<(), String> {
    if let Some(addr) = opts.addr.clone() {
        return cmd_query_remote(opts, &addr);
    }
    if opts.world.is_some() {
        return Err("--world routes to a server world; it requires --addr".to_string());
    }
    let protein = opts
        .positional
        .first()
        .ok_or("usage: biorank query <PROTEIN>")?;
    let (world, mediator, hints) = build(opts);
    let query = ExploratoryQuery::protein_functions(protein);
    let integrate_start = std::time::Instant::now();
    let result = mediator.execute(&query).map_err(|e| e.to_string())?;
    let integrate_ns = integrate_start.elapsed().as_nanos() as u64;
    let q = &result.query;
    // `--estimator auto` (which `--explain` implies unless an engine
    // was pinned): run the cost-based planner over the integrated
    // graph and execute the chosen strategy — the same features, model
    // seed, and strategy → method mapping the service's auto path
    // uses, so a local plan matches what a fresh server would pick.
    let mut method = opts.method.clone();
    let mut estimator = opts.effective_estimator();
    let mut chosen_plan = None;
    if estimator == Some(Estimator::Auto) {
        if Method::parse(&method).is_some_and(|m| m.is_plannable()) {
            let graph = GraphFeatures::extract(q).with_schema_reducible(query_schema_reducible(
                mediator.schema(),
                &hints,
                &query,
            ));
            let features = PlanFeatures {
                graph,
                top_k: opts.certify_top.then(|| opts.top as u32),
                trials: match opts.trials_policy() {
                    Trials::Fixed(n) => TrialsPolicy::Fixed(n),
                    Trials::Adaptive(cfg) => TrialsPolicy::Adaptive {
                        max_trials: cfg.max_trials,
                    },
                },
            };
            let p = plan(&features, &CostModel::default());
            (method, estimator) = match p.strategy {
                Strategy::Exact => ("exact".to_string(), None),
                Strategy::ReducedMc => ("rel".to_string(), None),
                Strategy::WordMc => ("mc".to_string(), Some(Estimator::Word)),
                Strategy::TraversalMc => ("mc".to_string(), Some(Estimator::Traversal)),
            };
            chosen_plan = Some(p);
        } else {
            // Non-plannable methods ignore the estimator everywhere.
            estimator = None;
        }
    }
    let score_start = std::time::Instant::now();
    let ranker = ranker_for(&method, opts.trials, estimator)?;
    let mut certificate = None;
    let scores = if matches!(method.as_str(), "exact" | "closed") {
        // The closed solution has no trials to adapt or parallelize.
        ranker.score(q).map_err(|e| e.to_string())?
    } else if let Trials::Adaptive(cfg) = opts.trials_policy() {
        // Adaptive local execution: the same `(method, estimator) →
        // engine` dispatch the service uses (`run_adaptive`), with the
        // local path's fixed seed 42.
        let method = Method::parse(&method)
            .filter(Method::is_stochastic)
            .ok_or_else(|| {
                format!("--adaptive-* applies to Monte Carlo methods (rel, mc), not {method:?}")
            })?;
        let top_k = opts.certify_top.then_some(opts.top);
        let outcome = biorank::service::run_adaptive(
            method,
            estimator.unwrap_or_default(),
            cfg,
            42,
            top_k,
            q,
        )
        .map_err(|e| e.to_string())?;
        certificate = Some(outcome.certificate);
        outcome.scores
    } else if opts.parallel && matches!(method.as_str(), "mc" | "relmc") {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if estimator == Some(Estimator::Word) {
            biorank::rank::WordMc::new(opts.trials, 42)
                .score_parallel(q, threads)
                .map_err(|e| e.to_string())?
        } else {
            TraversalMc::new(opts.trials, 42)
                .score_chunked(q, biorank::service::PARALLEL_MC_CHUNKS, threads)
                .map_err(|e| e.to_string())?
        }
    } else {
        ranker.score(q).map_err(|e| e.to_string())?
    };
    let score_ns = score_start.elapsed().as_nanos() as u64;
    let rank_start = std::time::Instant::now();
    let ranking = Ranking::rank(scores.answers(q));
    let rank_ns = rank_start.elapsed().as_nanos() as u64;
    println!(
        "{protein}: {} candidate functions ({} graph nodes, {} edges), method {}",
        q.answers().len(),
        q.graph().node_count(),
        q.graph().edge_count(),
        ranker.name()
    );
    if let Some(cert) = &certificate {
        println!("{}", certificate_line(cert));
    }
    if opts.explain {
        match &chosen_plan {
            Some(p) => print_plan(p, score_ns),
            None => println!(
                "  plan: none (an explicit estimator or non-MC method routes around the planner)"
            ),
        }
    }
    if opts.trace {
        // Local runs have no server-side spans; measure the three
        // in-process stages directly so `--trace` is useful offline.
        println!("  trace (local, 3 stages):");
        for (stage, nanos) in [
            ("integrate", integrate_ns),
            ("score", score_ns),
            ("rank", rank_ns),
        ] {
            println!("    {stage:<10} {nanos:>12} ns");
        }
    }
    let gold = world.iproclass.functions(protein);
    for entry in ranking.entries().iter().take(opts.top) {
        let key = result.answer_key(entry.node).unwrap_or("?");
        let label = result.label(entry.node);
        let known = GoTerm::parse(key)
            .map(|t| gold.contains(&t))
            .unwrap_or(false);
        println!(
            "{:>6}  {:<12} {:<42} {:>8.4}{}",
            entry.to_string(),
            key,
            truncate(label, 42),
            entry.score,
            if known { "  [iProClass]" } else { "" }
        );
    }
    Ok(())
}

fn cmd_explain(opts: &Options) -> Result<(), String> {
    let protein = opts
        .positional
        .first()
        .ok_or("usage: biorank explain <PROTEIN> <GO>")?;
    let go_key = opts
        .positional
        .get(1)
        .ok_or("usage: biorank explain <PROTEIN> <GO:xxxxxxx>")?;
    let (_, mediator, _) = build(opts);
    let result = mediator
        .execute(&ExploratoryQuery::protein_functions(protein))
        .map_err(|e| e.to_string())?;
    let q = &result.query;
    let answer = q
        .answers()
        .iter()
        .copied()
        .find(|&a| result.answer_key(a) == Some(go_key.as_str()))
        .ok_or_else(|| format!("{go_key} is not a candidate function of {protein}"))?;
    let ex = explain(q, answer, Some(32)).map_err(|e| e.to_string())?;
    println!("{} ({}) for {protein}:", go_key, result.label(answer));
    println!(
        "  reliability {:.4}; {} evidence path{}{}; independent-paths bound {:.4}",
        ex.reliability,
        ex.paths.len(),
        if ex.paths.len() == 1 { "" } else { "s" },
        if ex.truncated { " (truncated)" } else { "" },
        ex.independent_paths_score
    );
    // The explanation subgraph carries its own labels.
    let st = q.single_target(answer).map_err(|e| e.to_string())?;
    for (i, path) in ex.paths.iter().enumerate().take(opts.top) {
        let hops: Vec<&str> = path.nodes.iter().map(|&n| st.graph.node_label(n)).collect();
        println!(
            "  #{:<2} p={:.4}  {}",
            i + 1,
            path.probability,
            hops.join(" → ")
        );
    }
    Ok(())
}

fn cmd_topk(opts: &Options) -> Result<(), String> {
    let protein = opts
        .positional
        .first()
        .ok_or("usage: biorank topk <PROTEIN> <K>")?;
    let k: usize = opts
        .positional
        .get(1)
        .and_then(|v| v.parse().ok())
        .ok_or("usage: biorank topk <PROTEIN> <K>")?;
    let (_, mediator, _) = build(opts);
    let result = mediator
        .execute(&ExploratoryQuery::protein_functions(protein))
        .map_err(|e| e.to_string())?;
    let out = TopK::new(k).run(&result.query).map_err(|e| e.to_string())?;
    println!(
        "top-{k} of {} candidates after {} trials ({}):",
        result.query.answers().len(),
        out.trials_used,
        if out.certified {
            "95% rank certificate reached"
        } else {
            "trial ceiling hit, boundary still ambiguous"
        }
    );
    for (i, (n, score)) in out.top.iter().enumerate() {
        println!(
            "{:>3}  {:<12} {:<42} {score:.4}",
            i + 1,
            result.answer_key(*n).unwrap_or("?"),
            truncate(result.label(*n), 42)
        );
    }
    if let Some(r) = out.runner_up {
        println!("     (best excluded answer: {r:.4})");
    }
    Ok(())
}

fn cmd_scenarios(opts: &Options) -> Result<(), String> {
    let world = World::generate(WorldParams {
        seed: opts.seed,
        ..WorldParams::default()
    });
    let rankers = biorank::rank::paper_rankers(10_000, opts.seed);
    for scenario in Scenario::ALL {
        let cases = build_cases(&world, scenario).map_err(|e| e.to_string())?;
        let mut results = evaluate(&rankers, &cases).map_err(|e| e.to_string())?;
        results.push(random_baseline(&cases));
        let title = format!("{} ({} proteins)", scenario.title(), cases.len());
        println!("{}", biorank::eval::report::ap_table(&title, &results));
    }
    Ok(())
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        let cut: String = s.chars().take(n - 1).collect();
        format!("{cut}…")
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().cloned() else {
        eprintln!("usage: biorank <proteins|query|explain|topk|scenarios|serve|admin> [args]");
        eprintln!("see `biorank --help` in the README for details");
        return ExitCode::FAILURE;
    };
    let opts = match parse_args(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let run = match command.as_str() {
        "proteins" => cmd_proteins(&opts),
        "query" => cmd_query(&opts),
        "explain" => cmd_explain(&opts),
        "topk" => cmd_topk(&opts),
        "scenarios" => cmd_scenarios(&opts),
        "serve" => cmd_serve(&opts),
        "admin" => cmd_admin(&opts),
        other => Err(format!("unknown command {other:?}")),
    };
    match run {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
